//! Microcode: the statically compiled control program of the NPU.
//!
//! "The operation of the PEs is coordinated by a lightweight control core
//! that executes statically compiled microcode. … the computation of wide
//! DNN layers is time-multiplexed onto the PEs in the systolic ring" (§IV).
//!
//! The compiler turns a network topology into a linear program of
//! [`MicroOp`]s; the sequencer in [`npu`](crate::npu) executes them with
//! cycle accounting.

use matic_nn::{Activation, NetSpec};
use serde::{Deserialize, Serialize};

/// One microcode operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MicroOp {
    /// Latch layer parameters into the sequencer.
    SetLayer {
        /// Parameterized layer index.
        layer: u16,
        /// Input width.
        fan_in: u16,
        /// Output width.
        fan_out: u16,
        /// Activation routed through the AFU.
        activation: Activation,
    },
    /// Stream the current input vector into the PE ring's input FIFO.
    LoadInput,
    /// One time-multiplexed group: PEs `0..active` each compute one
    /// neuron's full dot product from their private weight banks.
    Macc {
        /// First neuron index of the group.
        neuron_base: u16,
        /// Number of active PEs in this group (≤ PE count).
        active: u16,
    },
    /// Route the group's accumulators through the AFU into the output
    /// buffer.
    Activate,
    /// Commit the output buffer as the next layer's input (or the final
    /// network output).
    StoreOutput,
    /// A whole convolutional layer: each filter behaves like one neuron
    /// whose fan-in weights are its `kernel²·in_c` taps, swept over every
    /// output position. One op covers the layer (load, MACs, AFU, store);
    /// filters time-multiplex onto the PE ring like dense neurons do.
    Conv {
        /// Parameterized layer index.
        layer: u16,
        /// Input height.
        in_h: u16,
        /// Input width.
        in_w: u16,
        /// Input channels.
        in_c: u16,
        /// Filters (output channels).
        filters: u16,
        /// Square kernel side.
        kernel: u16,
        /// Activation routed through the AFU.
        activation: Activation,
    },
    /// A whole non-overlapping max-pooling layer. Raw fixed-point max is
    /// value max (two's-complement words decode monotonically), so the
    /// comparator tree needs no AFU pass and touches no weight SRAM.
    Pool {
        /// Input height.
        in_h: u16,
        /// Input width.
        in_w: u16,
        /// Channels.
        channels: u16,
        /// Square window side.
        window: u16,
    },
}

/// A compiled microcode program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    ops: Vec<MicroOp>,
}

impl Program {
    /// Compiles a network topology for a ring of `pes` processing
    /// elements.
    ///
    /// # Panics
    ///
    /// Panics if `pes == 0` or any layer exceeds 65 535 neurons.
    pub fn compile(spec: &NetSpec, pes: usize) -> Self {
        assert!(pes > 0, "need at least one PE");
        let mut ops = Vec::new();
        for layer in 0..spec.depth() {
            match spec.layer_spec(layer) {
                matic_nn::LayerSpec::Dense { inputs, units, act } => {
                    let (fan_in, fan_out) = (inputs, units);
                    assert!(fan_in <= u16::MAX as usize && fan_out <= u16::MAX as usize);
                    ops.push(MicroOp::SetLayer {
                        layer: layer as u16,
                        fan_in: fan_in as u16,
                        fan_out: fan_out as u16,
                        activation: act,
                    });
                    ops.push(MicroOp::LoadInput);
                    let mut neuron = 0;
                    while neuron < fan_out {
                        let active = pes.min(fan_out - neuron);
                        ops.push(MicroOp::Macc {
                            neuron_base: neuron as u16,
                            active: active as u16,
                        });
                        ops.push(MicroOp::Activate);
                        neuron += active;
                    }
                    ops.push(MicroOp::StoreOutput);
                }
                matic_nn::LayerSpec::Conv2d {
                    in_h,
                    in_w,
                    in_c,
                    filters,
                    kernel,
                    act,
                } => {
                    assert!(
                        in_h <= u16::MAX as usize
                            && in_w <= u16::MAX as usize
                            && in_c <= u16::MAX as usize
                            && filters <= u16::MAX as usize
                            && kernel <= u16::MAX as usize
                    );
                    ops.push(MicroOp::Conv {
                        layer: layer as u16,
                        in_h: in_h as u16,
                        in_w: in_w as u16,
                        in_c: in_c as u16,
                        filters: filters as u16,
                        kernel: kernel as u16,
                        activation: act,
                    });
                }
                matic_nn::LayerSpec::MaxPool {
                    in_h,
                    in_w,
                    channels,
                    window,
                } => {
                    assert!(
                        in_h <= u16::MAX as usize
                            && in_w <= u16::MAX as usize
                            && channels <= u16::MAX as usize
                            && window <= u16::MAX as usize
                    );
                    ops.push(MicroOp::Pool {
                        in_h: in_h as u16,
                        in_w: in_w as u16,
                        channels: channels as u16,
                        window: window as u16,
                    });
                }
            }
        }
        Program { ops }
    }

    /// Whether the program consists purely of dense-layer sequences (no
    /// conv/pool ops). Dense programs are eligible for the batched
    /// lane-matmul fast path.
    pub fn is_dense(&self) -> bool {
        !self
            .ops
            .iter()
            .any(|op| matches!(op, MicroOp::Conv { .. } | MicroOp::Pool { .. }))
    }

    /// The operation stream.
    pub fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    /// Number of `Macc` groups (a proxy for time-multiplexing depth).
    pub fn macc_groups(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, MicroOp::Macc { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrow_layer_uses_one_group() {
        // 2-16-2 on 8 PEs: hidden needs 2 groups, output 1.
        let spec = NetSpec::regressor(&[2, 16, 2]);
        let prog = Program::compile(&spec, 8);
        assert_eq!(prog.macc_groups(), 2 + 1);
    }

    #[test]
    fn wide_layer_time_multiplexes() {
        // The paper's MNIST topology: 32 hidden = 4 groups, 10 out = 2.
        let spec = NetSpec::classifier(&[100, 32, 10]);
        let prog = Program::compile(&spec, 8);
        assert_eq!(prog.macc_groups(), 4 + 2);
    }

    #[test]
    fn last_group_activates_remainder() {
        let spec = NetSpec::classifier(&[4, 10, 1]);
        let prog = Program::compile(&spec, 8);
        let maccs: Vec<_> = prog
            .ops()
            .iter()
            .filter_map(|op| match op {
                MicroOp::Macc {
                    neuron_base,
                    active,
                } => Some((*neuron_base, *active)),
                _ => None,
            })
            .collect();
        assert_eq!(maccs, vec![(0, 8), (8, 2), (0, 1)]);
    }

    #[test]
    fn every_layer_is_bracketed() {
        let spec = NetSpec::classifier(&[3, 5, 2]);
        let prog = Program::compile(&spec, 4);
        let ops = prog.ops();
        assert!(matches!(ops[0], MicroOp::SetLayer { layer: 0, .. }));
        assert!(matches!(ops[1], MicroOp::LoadInput));
        assert!(matches!(ops.last(), Some(MicroOp::StoreOutput)));
    }

    #[test]
    fn single_pe_ring_works() {
        let spec = NetSpec::classifier(&[2, 3, 1]);
        let prog = Program::compile(&spec, 1);
        assert_eq!(prog.macc_groups(), 3 + 1);
    }

    #[test]
    fn conv_chains_compile_to_whole_layer_ops() {
        let spec = NetSpec::parse_topology("10x10x1;conv3x4;pool2;dense10").unwrap();
        let prog = Program::compile(&spec, 8);
        assert!(!prog.is_dense());
        assert!(matches!(
            prog.ops()[0],
            MicroOp::Conv {
                layer: 0,
                in_h: 10,
                filters: 4,
                kernel: 3,
                ..
            }
        ));
        assert!(matches!(
            prog.ops()[1],
            MicroOp::Pool {
                in_h: 8,
                window: 2,
                ..
            }
        ));
        // The trailing dense layer keeps the classic bracketed sequence.
        assert!(matches!(prog.ops()[2], MicroOp::SetLayer { layer: 2, .. }));
        assert!(matches!(prog.ops().last(), Some(MicroOp::StoreOutput)));
        // Dense programs stay dense.
        assert!(Program::compile(&NetSpec::classifier(&[4, 3, 2]), 8).is_dense());
    }
}
