//! A compact MSP430-inspired runtime microcontroller.
//!
//! SNNAC integrates "a sleep-enabled OpenMSP430-based microcontroller to
//! handle runtime control, debugging functions, and off-chip
//! communication" (§IV); the in-situ canary voltage-control routine
//! (Algorithm 1) executes on it between inferences.
//!
//! This module provides a faithful-in-spirit subset: a 16-bit RISC core
//! with MSP430-style two-operand instructions, status flags and
//! conditional jumps, a tiny assembler, and memory-mapped I/O through the
//! [`Mmio`] trait (the chip maps the voltage regulator and canary-poll
//! machinery into the address space). The canary routine ships as real
//! assembly — see [`canary_program`] — and is cross-checked against the
//! pure-Rust controller in `matic-core`.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Memory-mapped peripheral bus.
pub trait Mmio {
    /// Reads a peripheral register.
    fn read(&mut self, addr: u16) -> u16;
    /// Writes a peripheral register.
    fn write(&mut self, addr: u16, value: u16);
}

/// A no-op bus for pure-compute programs.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullMmio;

impl Mmio for NullMmio {
    fn read(&mut self, _addr: u16) -> u16 {
        0
    }
    fn write(&mut self, _addr: u16, _value: u16) {}
}

/// Peripheral address space starts here; lower addresses hit data RAM.
/// (The SoC maps the NPU I/O buffers, which need hundreds of words, as
/// well as the canary/regulator registers above this line.)
pub const MMIO_BASE: u16 = 0xE000;

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Operand {
    /// General-purpose register `r0`–`r15`.
    Reg(u8),
    /// Immediate constant.
    Imm(u16),
    /// Absolute address (data RAM below [`MMIO_BASE`], peripherals above).
    Abs(u16),
    /// Register-indirect (`@rN`): memory at the address held in `rN`.
    Ind(u8),
}

/// The instruction set (a practical MSP430 subset; MOV/ADD/SUB/CMP/AND/
/// BIS/XOR two-operand forms plus jumps, call/ret and halt).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    /// `dst ← src`.
    Mov(Operand, Operand),
    /// `dst ← dst + src` (sets flags).
    Add(Operand, Operand),
    /// `dst ← dst − src` (sets flags).
    Sub(Operand, Operand),
    /// Sets flags from `dst − src` without writing.
    Cmp(Operand, Operand),
    /// `dst ← dst & src` (sets Z/N).
    And(Operand, Operand),
    /// `dst ← dst | src` (MSP430 `BIS`).
    Bis(Operand, Operand),
    /// `dst ← dst ^ src` (sets Z/N).
    Xor(Operand, Operand),
    /// Unconditional jump to instruction index.
    Jmp(u16),
    /// Jump if zero flag set (`JEQ`/`JZ`).
    Jz(u16),
    /// Jump if zero flag clear (`JNE`/`JNZ`).
    Jnz(u16),
    /// Jump if greater-or-equal, signed (`JGE`: N⊕V = 0).
    Jge(u16),
    /// Jump if less, signed (`JL`: N⊕V = 1).
    Jl(u16),
    /// Push return address, jump.
    Call(u16),
    /// Pop return address.
    Ret,
    /// No operation.
    Nop,
    /// Stop the core (returns control to the host).
    Halt,
}

/// Execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The program ran past `max_steps` without halting.
    StepLimit,
    /// Jump/fetch outside the program.
    BadPc(u16),
    /// `Ret` with an empty call stack.
    StackUnderflow,
    /// An immediate was used as a destination.
    BadDestination,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::StepLimit => write!(f, "step limit exceeded"),
            ExecError::BadPc(pc) => write!(f, "bad program counter {pc}"),
            ExecError::StackUnderflow => write!(f, "return with empty call stack"),
            ExecError::BadDestination => write!(f, "immediate used as destination"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Status flags (the relevant subset of the MSP430 SR).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flags {
    /// Zero.
    pub z: bool,
    /// Negative (bit 15 of the result).
    pub n: bool,
    /// Carry (borrow-free subtraction / unsigned overflow on add).
    pub c: bool,
    /// Signed overflow.
    pub v: bool,
}

/// The microcontroller core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Msp430 {
    regs: [u16; 16],
    flags: Flags,
    ram: Vec<u16>,
    call_stack: Vec<u16>,
    pc: u16,
    halted: bool,
}

impl Msp430 {
    /// A fresh core with `ram_words` of zeroed data RAM.
    pub fn new(ram_words: usize) -> Self {
        Msp430 {
            regs: [0; 16],
            flags: Flags::default(),
            ram: vec![0; ram_words],
            call_stack: Vec::new(),
            pc: 0,
            halted: false,
        }
    }

    /// Register read.
    pub fn reg(&self, r: u8) -> u16 {
        self.regs[r as usize]
    }

    /// Register write.
    pub fn set_reg(&mut self, r: u8, v: u16) {
        self.regs[r as usize] = v;
    }

    /// Current flags.
    pub fn flags(&self) -> Flags {
        self.flags
    }

    /// Whether the core has executed `Halt`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    fn load(&mut self, op: Operand, mmio: &mut dyn Mmio) -> u16 {
        match op {
            Operand::Reg(r) => self.regs[r as usize],
            Operand::Imm(v) => v,
            Operand::Abs(a) => self.load_mem(a, mmio),
            Operand::Ind(r) => {
                let a = self.regs[r as usize];
                self.load_mem(a, mmio)
            }
        }
    }

    fn load_mem(&mut self, a: u16, mmio: &mut dyn Mmio) -> u16 {
        if a >= MMIO_BASE {
            mmio.read(a)
        } else {
            self.ram.get(a as usize).copied().unwrap_or(0)
        }
    }

    fn store_mem(&mut self, a: u16, v: u16, mmio: &mut dyn Mmio) {
        if a >= MMIO_BASE {
            mmio.write(a, v);
        } else if let Some(slot) = self.ram.get_mut(a as usize) {
            *slot = v;
        }
    }

    fn store(&mut self, op: Operand, v: u16, mmio: &mut dyn Mmio) -> Result<(), ExecError> {
        match op {
            Operand::Reg(r) => {
                self.regs[r as usize] = v;
                Ok(())
            }
            Operand::Imm(_) => Err(ExecError::BadDestination),
            Operand::Abs(a) => {
                self.store_mem(a, v, mmio);
                Ok(())
            }
            Operand::Ind(r) => {
                let a = self.regs[r as usize];
                self.store_mem(a, v, mmio);
                Ok(())
            }
        }
    }

    fn set_flags_sub(&mut self, dst: u16, src: u16) -> u16 {
        let (res, borrow) = dst.overflowing_sub(src);
        self.flags.z = res == 0;
        self.flags.n = res & 0x8000 != 0;
        self.flags.c = !borrow; // MSP430: C = no borrow
        self.flags.v = ((dst ^ src) & (dst ^ res)) & 0x8000 != 0;
        res
    }

    fn set_flags_add(&mut self, dst: u16, src: u16) -> u16 {
        let (res, carry) = dst.overflowing_add(src);
        self.flags.z = res == 0;
        self.flags.n = res & 0x8000 != 0;
        self.flags.c = carry;
        self.flags.v = (!(dst ^ src) & (dst ^ res)) & 0x8000 != 0;
        res
    }

    fn set_flags_logic(&mut self, res: u16) {
        self.flags.z = res == 0;
        self.flags.n = res & 0x8000 != 0;
    }

    /// Runs `program` from instruction 0 until `Halt`, for at most
    /// `max_steps` instructions. Returns the number of instructions
    /// executed.
    ///
    /// # Errors
    ///
    /// See [`ExecError`].
    pub fn run(
        &mut self,
        program: &[Instr],
        mmio: &mut dyn Mmio,
        max_steps: usize,
    ) -> Result<usize, ExecError> {
        self.pc = 0;
        self.halted = false;
        let mut steps = 0usize;
        while !self.halted {
            if steps >= max_steps {
                return Err(ExecError::StepLimit);
            }
            let instr = *program
                .get(self.pc as usize)
                .ok_or(ExecError::BadPc(self.pc))?;
            self.pc += 1;
            steps += 1;
            match instr {
                Instr::Mov(src, dst) => {
                    let v = self.load(src, mmio);
                    self.store(dst, v, mmio)?;
                }
                Instr::Add(src, dst) => {
                    let s = self.load(src, mmio);
                    let d = self.load(dst, mmio);
                    let r = self.set_flags_add(d, s);
                    self.store(dst, r, mmio)?;
                }
                Instr::Sub(src, dst) => {
                    let s = self.load(src, mmio);
                    let d = self.load(dst, mmio);
                    let r = self.set_flags_sub(d, s);
                    self.store(dst, r, mmio)?;
                }
                Instr::Cmp(src, dst) => {
                    let s = self.load(src, mmio);
                    let d = self.load(dst, mmio);
                    self.set_flags_sub(d, s);
                }
                Instr::And(src, dst) => {
                    let r = self.load(dst, mmio) & self.load(src, mmio);
                    self.set_flags_logic(r);
                    self.store(dst, r, mmio)?;
                }
                Instr::Bis(src, dst) => {
                    let r = self.load(dst, mmio) | self.load(src, mmio);
                    self.store(dst, r, mmio)?;
                }
                Instr::Xor(src, dst) => {
                    let r = self.load(dst, mmio) ^ self.load(src, mmio);
                    self.set_flags_logic(r);
                    self.store(dst, r, mmio)?;
                }
                Instr::Jmp(t) => self.pc = t,
                Instr::Jz(t) => {
                    if self.flags.z {
                        self.pc = t;
                    }
                }
                Instr::Jnz(t) => {
                    if !self.flags.z {
                        self.pc = t;
                    }
                }
                Instr::Jge(t) => {
                    if self.flags.n == self.flags.v {
                        self.pc = t;
                    }
                }
                Instr::Jl(t) => {
                    if self.flags.n != self.flags.v {
                        self.pc = t;
                    }
                }
                Instr::Call(t) => {
                    self.call_stack.push(self.pc);
                    self.pc = t;
                }
                Instr::Ret => {
                    self.pc = self.call_stack.pop().ok_or(ExecError::StackUnderflow)?;
                }
                Instr::Nop => {}
                Instr::Halt => self.halted = true,
            }
        }
        Ok(steps)
    }
}

/// Assembly error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// Assembles MSP430-style source into instructions.
///
/// Syntax: one instruction per line; `; comment`; `label:`;
/// operands `rN`, `#imm`, `&addr` (decimal or `0x` hex). Two-operand
/// instructions read `OP src, dst` (MSP430 order).
///
/// # Errors
///
/// Returns [`AsmError`] with the offending line on any parse failure or
/// undefined label.
pub fn assemble(source: &str) -> Result<Vec<Instr>, AsmError> {
    // Pass 1: label addresses.
    let mut labels: HashMap<String, u16> = HashMap::new();
    let mut index = 0u16;
    for raw in source.lines() {
        let line = strip(raw);
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_suffix(':') {
            labels.insert(name.trim().to_string(), index);
        } else {
            index += 1;
        }
    }
    // Pass 2: encode.
    let mut out = Vec::new();
    for (n, raw) in source.lines().enumerate() {
        let line = strip(raw);
        if line.is_empty() || line.ends_with(':') {
            continue;
        }
        out.push(parse_instr(line, &labels).map_err(|message| AsmError {
            line: n + 1,
            message,
        })?);
    }
    Ok(out)
}

fn strip(raw: &str) -> &str {
    let no_comment = raw.split(';').next().unwrap_or("");
    no_comment.trim()
}

fn parse_instr(line: &str, labels: &HashMap<String, u16>) -> Result<Instr, String> {
    let (mnemonic, rest) = match line.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (line, ""),
    };
    let target = |labels: &HashMap<String, u16>, rest: &str| -> Result<u16, String> {
        labels
            .get(rest.trim())
            .copied()
            .ok_or_else(|| format!("undefined label `{}`", rest.trim()))
    };
    let two = |rest: &str| -> Result<(Operand, Operand), String> {
        let (a, b) = rest
            .split_once(',')
            .ok_or_else(|| "expected two operands".to_string())?;
        Ok((parse_operand(a.trim())?, parse_operand(b.trim())?))
    };
    match mnemonic.to_ascii_uppercase().as_str() {
        "MOV" => two(rest).map(|(s, d)| Instr::Mov(s, d)),
        "ADD" => two(rest).map(|(s, d)| Instr::Add(s, d)),
        "SUB" => two(rest).map(|(s, d)| Instr::Sub(s, d)),
        "CMP" => two(rest).map(|(s, d)| Instr::Cmp(s, d)),
        "AND" => two(rest).map(|(s, d)| Instr::And(s, d)),
        "BIS" => two(rest).map(|(s, d)| Instr::Bis(s, d)),
        "XOR" => two(rest).map(|(s, d)| Instr::Xor(s, d)),
        "JMP" => target(labels, rest).map(Instr::Jmp),
        "JZ" | "JEQ" => target(labels, rest).map(Instr::Jz),
        "JNZ" | "JNE" => target(labels, rest).map(Instr::Jnz),
        "JGE" => target(labels, rest).map(Instr::Jge),
        "JL" => target(labels, rest).map(Instr::Jl),
        "CALL" => target(labels, rest).map(Instr::Call),
        "RET" => Ok(Instr::Ret),
        "NOP" => Ok(Instr::Nop),
        "HALT" => Ok(Instr::Halt),
        other => Err(format!("unknown mnemonic `{other}`")),
    }
}

fn parse_operand(text: &str) -> Result<Operand, String> {
    if let Some(ind) = text.strip_prefix('@') {
        return match parse_operand(ind)? {
            Operand::Reg(r) => Ok(Operand::Ind(r)),
            _ => Err(format!("indirect operand must name a register: `{text}`")),
        };
    }
    if let Some(reg) = text.strip_prefix('r').or_else(|| text.strip_prefix('R')) {
        let n: u8 = reg.parse().map_err(|_| format!("bad register `{text}`"))?;
        if n > 15 {
            return Err(format!("register out of range `{text}`"));
        }
        return Ok(Operand::Reg(n));
    }
    if let Some(imm) = text.strip_prefix('#') {
        return parse_num(imm).map(Operand::Imm);
    }
    if let Some(abs) = text.strip_prefix('&') {
        return parse_num(abs).map(Operand::Abs);
    }
    Err(format!("bad operand `{text}`"))
}

fn parse_num(text: &str) -> Result<u16, String> {
    let text = text.trim();
    let parsed = if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u16::from_str_radix(hex, 16)
    } else if let Some(neg) = text.strip_prefix('-') {
        return neg
            .parse::<i32>()
            .map(|v| (-v) as u16)
            .map_err(|_| format!("bad number `{text}`"));
    } else {
        text.parse::<u16>()
    };
    parsed.map_err(|_| format!("bad number `{text}`"))
}

/// Memory map of the canary-control peripherals (see [`canary_program`]).
pub mod canary_map {
    /// RW: SRAM rail set-point in millivolts.
    pub const VREG_MV: u16 = 0xFF00;
    /// W: 1 = restore/arm canary states, 2 = poll canaries.
    pub const CANARY_CTRL: u16 = 0xFF02;
    /// R: 1 if any canary failed during the last poll.
    pub const CANARY_STATUS: u16 = 0xFF04;
    /// W: final settled voltage reported by the routine.
    pub const RESULT_MV: u16 = 0xFF06;
}

/// The in-situ canary voltage-control routine (paper Algorithm 1, plus the
/// upward-recovery phase Fig. 12's temperature tracking requires) as
/// MSP430-style assembly.
///
/// Register use: `r4` current voltage (mV), `r5` Δv, `r6` safe rail,
/// `r7` floor, `r8` poll status, `r9` probe voltage.
pub fn canary_program(step_mv: u16, safe_mv: u16, floor_mv: u16, start_mv: u16) -> String {
    format!(
        r"
; Algorithm 1: in-situ canary-based voltage control
        MOV #{start_mv}, r4      ; v <- current setting
        MOV #{step_mv}, r5       ; dv
        MOV #{safe_mv}, r6       ; safe rail
        MOV #{floor_mv}, r7      ; sanity floor
        MOV r4, &0xFF00          ; SetSRAMVoltage(v)
recover:
        MOV #2, &0xFF02          ; poll canaries
        MOV &0xFF04, r8
        CMP #0, r8
        JZ descend               ; all healthy -> Algorithm 1 descent
        CMP r6, r4               ; at the safe rail already?
        JGE descend
        ADD r5, r4               ; v <- v + dv
        MOV r4, &0xFF00
        MOV #1, &0xFF02          ; RestoreStates(C)
        JMP recover
descend:
        MOV r4, r9
        SUB r5, r9               ; probe = v - dv
        CMP r7, r9
        JL settle                ; below floor: stop
        MOV r9, &0xFF00          ; SetSRAMVoltage(probe)
        MOV #2, &0xFF02          ; any_failed <- CheckStates(C)
        MOV &0xFF04, r8
        CMP #0, r8
        JNZ fail
        MOV r9, r4               ; v <- probe
        JMP descend
fail:
        MOV r4, &0xFF00          ; SetSRAMVoltage(v)  (step back up)
        MOV #1, &0xFF02          ; RestoreStates(C)
settle:
        MOV r4, &0xFF06          ; report settled voltage
        HALT
"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_program(src: &str) -> Msp430 {
        let prog = assemble(src).expect("assembles");
        let mut cpu = Msp430::new(256);
        cpu.run(&prog, &mut NullMmio, 10_000).expect("halts");
        cpu
    }

    #[test]
    fn mov_add_sub_immediates() {
        let cpu = run_program(
            "MOV #10, r4\n\
             ADD #5, r4\n\
             SUB #3, r4\n\
             HALT",
        );
        assert_eq!(cpu.reg(4), 12);
    }

    #[test]
    fn ram_load_store() {
        let cpu = run_program(
            "MOV #1234, &0x10\n\
             MOV &0x10, r5\n\
             HALT",
        );
        assert_eq!(cpu.reg(5), 1234);
    }

    #[test]
    fn conditional_loop_counts_down() {
        let cpu = run_program(
            "MOV #5, r4\n\
             MOV #0, r5\n\
             loop:\n\
             ADD #2, r5\n\
             SUB #1, r4\n\
             CMP #0, r4\n\
             JNZ loop\n\
             HALT",
        );
        assert_eq!(cpu.reg(5), 10);
    }

    #[test]
    fn signed_compare_jge_jl() {
        // -1 < 1 signed, but 0xFFFF > 1 unsigned: JL must see signed.
        let cpu = run_program(
            "MOV #-1, r4\n\
             CMP #1, r4\n\
             JL less\n\
             MOV #0, r6\n\
             JMP end\n\
             less:\n\
             MOV #1, r6\n\
             end:\n\
             HALT",
        );
        assert_eq!(cpu.reg(6), 1);
    }

    #[test]
    fn call_ret() {
        let cpu = run_program(
            "CALL sub\n\
             ADD #1, r4\n\
             HALT\n\
             sub:\n\
             MOV #41, r4\n\
             RET",
        );
        assert_eq!(cpu.reg(4), 42);
    }

    #[test]
    fn logic_ops() {
        let cpu = run_program(
            "MOV #0x0F0F, r4\n\
             AND #0x00FF, r4\n\
             BIS #0x1000, r4\n\
             XOR #0x1001, r4\n\
             HALT",
        );
        assert_eq!(cpu.reg(4), 0x000E);
    }

    #[test]
    fn step_limit_detected() {
        let prog = assemble("loop:\nJMP loop").unwrap();
        let mut cpu = Msp430::new(16);
        assert_eq!(
            cpu.run(&prog, &mut NullMmio, 100),
            Err(ExecError::StepLimit)
        );
    }

    #[test]
    fn undefined_label_is_an_error() {
        let err = assemble("JMP nowhere").unwrap_err();
        assert!(err.message.contains("undefined label"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn bad_register_is_an_error() {
        assert!(assemble("MOV #1, r16").is_err());
    }

    #[test]
    fn immediate_destination_fails_at_runtime() {
        let prog = assemble("MOV r4, #5\nHALT").unwrap();
        let mut cpu = Msp430::new(16);
        assert_eq!(
            cpu.run(&prog, &mut NullMmio, 10),
            Err(ExecError::BadDestination)
        );
    }

    #[test]
    fn mmio_routes_above_base() {
        struct Recorder(Vec<(u16, u16)>);
        impl Mmio for Recorder {
            fn read(&mut self, addr: u16) -> u16 {
                addr.wrapping_add(1)
            }
            fn write(&mut self, addr: u16, value: u16) {
                self.0.push((addr, value));
            }
        }
        let prog = assemble(
            "MOV #7, &0xFF00\n\
             MOV &0xFF04, r4\n\
             HALT",
        )
        .unwrap();
        let mut cpu = Msp430::new(16);
        let mut bus = Recorder(Vec::new());
        cpu.run(&prog, &mut bus, 10).unwrap();
        assert_eq!(bus.0, vec![(0xFF00, 7)]);
        assert_eq!(cpu.reg(4), 0xFF05);
    }

    #[test]
    fn indirect_addressing_copy_loop() {
        // Copy 4 words from RAM 0x10.. to 0x20.. via @r pointers.
        let cpu = run_program(
            "MOV #11, &0x10\n\
             MOV #22, &0x11\n\
             MOV #33, &0x12\n\
             MOV #44, &0x13\n\
             MOV #0x10, r4\n\
             MOV #0x20, r5\n\
             MOV #4, r7\n\
             loop:\n\
             MOV @r4, r8\n\
             MOV r8, @r5\n\
             ADD #1, r4\n\
             ADD #1, r5\n\
             SUB #1, r7\n\
             CMP #0, r7\n\
             JNZ loop\n\
             MOV &0x23, r9\n\
             HALT",
        );
        assert_eq!(cpu.reg(9), 44);
    }

    #[test]
    fn indirect_must_name_register() {
        assert!(assemble("MOV @5, r4").is_err());
    }

    #[test]
    fn canary_program_assembles() {
        let prog = assemble(&canary_program(5, 900, 400, 900)).unwrap();
        assert!(prog.len() > 15);
    }
}
