//! The Neural Processing Unit: eight MAC PEs in a systolic ring.
//!
//! Each PE owns a private voltage-scalable weight SRAM bank; inputs are
//! streamed to all PEs while each accumulates the dot product of the
//! neuron it currently owns; wide layers are time-multiplexed in groups of
//! eight neurons, with results drained through the AFU (§IV, Fig. 8).
//!
//! Weights are fetched from the **physical banks on every inference**, so
//! the read-disturb mechanics of `matic-sram` are exercised exactly as on
//! silicon: at overscaled voltages marginal cells flip to their preferred
//! state and the PE consumes the corrupted word.
//!
//! The simulator realizes those fetches in two bit-identical ways: the
//! per-MAC reference path ([`Snnac::execute_reference`]) reads a word per
//! multiply, while the default path composes the array's post-disturb
//! contents into a dense [`FaultedWeights`] artifact once and then runs a
//! blocked integer kernel ([`Snnac::execute_composed`]) — the fast shape
//! evaluation loops should use, composing once per operating point.

use crate::afu::Afu;
use crate::microcode::{MicroOp, Program};
use matic_core::{FaultedWeights, ParamRef, WeightLayout};
use matic_fixed::{dequantize, narrow_lane, quantize_lane, Accumulator, Fx, QFormat};
use matic_nn::kernel::{fx_matmul, fx_matmul_dropped, fx_matvec, fx_matvec_dropped, MacDropSpec};
use matic_sram::SramArray;
use serde::{Deserialize, Serialize};

/// Cycle/traffic counters for one inference.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NpuStats {
    /// Total clock cycles.
    pub cycles: u64,
    /// MAC operations performed (one per weight fetched).
    pub macs: u64,
    /// Weight-SRAM word reads.
    pub sram_reads: u64,
}

/// The systolic NPU core configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snnac {
    pes: usize,
    weight_fmt: QFormat,
    act_fmt: QFormat,
    afu: Afu,
    /// Pipeline fill/drain overhead charged per MACC group, cycles.
    group_overhead: u64,
}

impl Snnac {
    /// The fabricated configuration: 8 PEs, Q3.12 weights, Q1.14
    /// activations, 4-cycle group overhead (systolic fill/drain).
    #[allow(clippy::self_named_constructors)]
    pub fn snnac(weight_fmt: QFormat) -> Self {
        Snnac {
            pes: 8,
            weight_fmt,
            act_fmt: QFormat::snnac_activation(),
            afu: Afu::snnac(),
            group_overhead: 4,
        }
    }

    /// Number of processing elements.
    pub fn pe_count(&self) -> usize {
        self.pes
    }

    /// The weight format.
    pub fn weight_format(&self) -> QFormat {
        self.weight_fmt
    }

    /// The activation format.
    pub fn activation_format(&self) -> QFormat {
        self.act_fmt
    }

    /// The activation-function unit.
    pub fn afu(&self) -> &Afu {
        &self.afu
    }

    /// Executes a compiled program against the weight memories.
    ///
    /// `layout` maps each (layer, neuron, input) weight to its physical
    /// word; it must have been built for the same bank count as `array`.
    ///
    /// Internally this composes the array's current contents into a
    /// [`FaultedWeights`] artifact (one physical read per stored word —
    /// the same reads, in effect, that the per-MAC fetch loop would
    /// issue) and then runs the blocked integer kernel over the dense
    /// tensors. Outputs, statistics and the post-disturb array state are
    /// bit-identical to [`Snnac::execute_reference`]; callers evaluating
    /// many inputs at one operating point should compose once themselves
    /// and call [`Snnac::execute_composed`] directly.
    ///
    /// Returns the output activations (as reals) and cycle statistics.
    ///
    /// # Panics
    ///
    /// Panics if `input` width does not match the program's first layer or
    /// the layout disagrees with the array geometry.
    pub fn execute(
        &self,
        program: &Program,
        layout: &WeightLayout,
        array: &mut SramArray,
        input: &[f64],
    ) -> (Vec<f64>, NpuStats) {
        assert!(
            layout.banks() == array.bank_count(),
            "layout banks {} != array banks {}",
            layout.banks(),
            array.bank_count()
        );
        let weights = FaultedWeights::from_array(layout, self.weight_fmt, array);
        self.execute_composed(program, &weights, input)
    }

    /// Executes a compiled program over fault-composed weight tensors:
    /// the fast path that never consults a fault map or weight memory
    /// inside the MAC loop.
    ///
    /// `weights` is the [`FaultedWeights`] artifact of the current
    /// (chip, voltage) operating point; compose it once per operating
    /// point and reuse it across the whole evaluation set. The MAC
    /// arithmetic is exact integer accumulation, so the blocked/unrolled
    /// kernel produces bit-identical activations — and identical cycle
    /// accounting, since the modeled hardware still fetches every word —
    /// to the per-MAC reference path.
    ///
    /// # Panics
    ///
    /// Panics if `input` width does not match the program's first layer
    /// or the artifact's shapes disagree with the program.
    pub fn execute_composed(
        &self,
        program: &Program,
        weights: &FaultedWeights,
        input: &[f64],
    ) -> (Vec<f64>, NpuStats) {
        self.execute_composed_dropped(program, weights, input, None)
    }

    /// [`Snnac::execute_composed`] with TE-Drop error injection: MACs
    /// flagged by `drops` contribute zero to the accumulation (their
    /// partial product is squashed by the Razor-style error path), while
    /// cycle and traffic accounting is unchanged — a dropped MAC still
    /// occupies its issue slot and its weight word is still fetched.
    /// Bias additions ride the short accumulator path and never drop.
    ///
    /// `drops = None` is exactly [`Snnac::execute_composed`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Snnac::execute_composed`].
    pub fn execute_composed_dropped(
        &self,
        program: &Program,
        weights: &FaultedWeights,
        input: &[f64],
        drops: Option<&MacDropSpec>,
    ) -> (Vec<f64>, NpuStats) {
        let mut stats = NpuStats::default();
        // The input FIFO holds the current layer's inputs (activation fmt),
        // mirrored as raw values for the integer kernel.
        let mut current: Vec<Fx> = input
            .iter()
            .map(|&x| Fx::from_f64(x, self.act_fmt))
            .collect();
        let mut current_raw: Vec<i32> = current.iter().map(|fx| fx.raw()).collect();
        let mut next: Vec<Fx> = Vec::new();
        let mut fan_in = 0usize;
        let mut layer = 0usize;
        let mut activation = matic_nn::Activation::Sigmoid;
        let mut pending: Vec<Fx> = Vec::new(); // accumulator-drained group
        let mut group_dots = vec![0i64; self.pes];
        let act_frac = self.act_fmt.frac_bits();

        for op in program.ops() {
            match *op {
                MicroOp::SetLayer {
                    layer: l,
                    fan_in: fi,
                    fan_out: fo,
                    activation: act,
                } => {
                    layer = l as usize;
                    fan_in = fi as usize;
                    activation = act;
                    next = Vec::with_capacity(fo as usize);
                }
                MicroOp::LoadInput => {
                    assert_eq!(
                        current.len(),
                        fan_in,
                        "input width mismatch at layer {layer}"
                    );
                    // Streaming the input vector costs one cycle per element.
                    stats.cycles += fan_in as u64;
                }
                MicroOp::Macc {
                    neuron_base,
                    active,
                } => {
                    // All active PEs run in lock-step: fan_in MAC cycles,
                    // one bias-fetch cycle, plus fill/drain overhead.
                    stats.cycles += fan_in as u64 + 1 + self.group_overhead;
                    pending.clear();
                    let tensor = weights.layer(layer);
                    let biases = weights.bias(layer);
                    let base = neuron_base as usize;
                    let group = active as usize;
                    // The group's neurons are consecutive tensor rows, so
                    // the whole lock-step MACC is one blocked matvec over
                    // the dense storage; exact i64 accumulation makes the
                    // unrolled kernel equal the sequential MAC chain.
                    let rows =
                        &tensor.as_raw()[base * tensor.cols()..(base + group) * tensor.cols()];
                    let dots = &mut group_dots[..group];
                    match drops {
                        None => fx_matvec(rows, &current_raw, dots),
                        Some(d) => fx_matvec_dropped(rows, &current_raw, dots, d, layer, base),
                    }
                    for (pe, &dot) in dots.iter().enumerate() {
                        let mut acc = Accumulator::new();
                        acc.add_raw(dot);
                        acc.add_raw((biases[base + pe] as i64) << act_frac);
                        stats.sram_reads += fan_in as u64 + 1;
                        stats.macs += fan_in as u64;
                        // Narrow the wide accumulator to the AFU input.
                        pending.push(acc.narrow_from(
                            self.weight_fmt,
                            act_frac,
                            self.afu.input_format(),
                        ));
                    }
                }
                MicroOp::Activate => {
                    // The AFU drains one value per cycle.
                    stats.cycles += pending.len() as u64;
                    for z in pending.drain(..) {
                        next.push(self.afu.apply(activation, z));
                    }
                }
                MicroOp::StoreOutput => {
                    stats.cycles += 1;
                    current = std::mem::take(&mut next);
                    current_raw.clear();
                    current_raw.extend(current.iter().map(|fx| fx.raw()));
                }
                MicroOp::Conv {
                    layer: l,
                    in_h,
                    in_w,
                    in_c,
                    filters,
                    kernel,
                    activation: act,
                } => {
                    let layer = l as usize;
                    let (in_h, in_w, in_c) = (in_h as usize, in_w as usize, in_c as usize);
                    let (filters, kernel) = (filters as usize, kernel as usize);
                    let (out_h, out_w) = (in_h + 1 - kernel, in_w + 1 - kernel);
                    let k2c = kernel * kernel * in_c;
                    let in_width = in_h * in_w * in_c;
                    assert_eq!(
                        current.len(),
                        in_width,
                        "input width mismatch at layer {layer}"
                    );
                    // Stream the feature map in: one cycle per element.
                    stats.cycles += in_width as u64;
                    let tensor = weights.layer(layer);
                    let biases = weights.bias(layer);
                    let rows = tensor.as_raw();
                    // Each output position runs the filter set like one
                    // dense neuron group, time-multiplexed over the ring.
                    let groups = filters.div_ceil(self.pes) as u64;
                    let mut patch = vec![0i32; k2c];
                    let mut dots = vec![0i64; filters];
                    let mut out = Vec::with_capacity(out_h * out_w * filters);
                    for oy in 0..out_h {
                        for ox in 0..out_w {
                            // Gather the receptive field in (ky, kx, c)
                            // order — the weight-column convention.
                            let mut t = 0;
                            for ky in 0..kernel {
                                for kx in 0..kernel {
                                    let base = ((oy + ky) * in_w + (ox + kx)) * in_c;
                                    for c in 0..in_c {
                                        patch[t] = current_raw[base + c];
                                        t += 1;
                                    }
                                }
                            }
                            stats.cycles += groups * (k2c as u64 + 1 + self.group_overhead);
                            match drops {
                                None => fx_matvec(rows, &patch, &mut dots),
                                Some(d) => fx_matvec_dropped(rows, &patch, &mut dots, d, layer, 0),
                            }
                            for (f, &dot) in dots.iter().enumerate() {
                                let mut acc = Accumulator::new();
                                acc.add_raw(dot);
                                acc.add_raw((biases[f] as i64) << act_frac);
                                stats.sram_reads += k2c as u64 + 1;
                                stats.macs += k2c as u64;
                                let z = acc.narrow_from(
                                    self.weight_fmt,
                                    act_frac,
                                    self.afu.input_format(),
                                );
                                out.push(self.afu.apply(act, z));
                            }
                        }
                    }
                    // AFU drains one value per output element, then the
                    // feature map commits in one store step.
                    stats.cycles += (out_h * out_w * filters) as u64 + 1;
                    current = out;
                    current_raw.clear();
                    current_raw.extend(current.iter().map(|fx| fx.raw()));
                }
                MicroOp::Pool {
                    in_h,
                    in_w,
                    channels,
                    window,
                } => {
                    let (in_h, in_w) = (in_h as usize, in_w as usize);
                    let (channels, window) = (channels as usize, window as usize);
                    let (out_h, out_w) = (in_h / window, in_w / window);
                    let in_width = in_h * in_w * channels;
                    assert_eq!(current.len(), in_width, "input width mismatch at pool");
                    let mut out = Vec::with_capacity(out_h * out_w * channels);
                    for oy in 0..out_h {
                        for ox in 0..out_w {
                            for c in 0..channels {
                                // Raw fixed-point max IS value max (the
                                // sign-extended words order monotonically);
                                // strict `>` keeps the first maximum.
                                let mut best =
                                    current[((oy * window) * in_w + ox * window) * channels + c];
                                for ky in 0..window {
                                    for kx in 0..window {
                                        let v = current[((oy * window + ky) * in_w
                                            + (ox * window + kx))
                                            * channels
                                            + c];
                                        if v.raw() > best.raw() {
                                            best = v;
                                        }
                                    }
                                }
                                out.push(best);
                            }
                        }
                    }
                    // Streaming comparator tree: one cycle per input
                    // element scanned, one per output drained, one store.
                    stats.cycles += (in_width + out_h * out_w * channels) as u64 + 1;
                    current = out;
                    current_raw.clear();
                    current_raw.extend(current.iter().map(|fx| fx.raw()));
                }
            }
        }
        (current.iter().map(|fx| fx.to_f64()).collect(), stats)
    }

    /// Batched [`Snnac::execute_composed`]: runs every input through the
    /// program in one pass, re-reading each composed weight row once per
    /// MACC group instead of once per sample.
    ///
    /// Outputs are bit-identical to calling [`Snnac::execute_composed`]
    /// per input (each sample's lane accumulates the same exact integer
    /// sum). The returned [`NpuStats`] are **per-inference**: the modeled
    /// hardware runs the identical schedule for every sample regardless
    /// of the data, so each sample's counters are equal and the batch
    /// reports them once — the same stats any single `execute_composed`
    /// call would return. An empty batch returns `(vec![], NpuStats::default())`.
    ///
    /// # Panics
    ///
    /// Panics if any input's width does not match the program's first
    /// layer or the artifact's shapes disagree with the program.
    pub fn execute_batch(
        &self,
        program: &Program,
        weights: &FaultedWeights,
        inputs: &[&[f64]],
    ) -> (Vec<Vec<f64>>, NpuStats) {
        self.execute_batch_dropped(program, weights, inputs, None)
    }

    /// [`Snnac::execute_batch`] with TE-Drop error injection. The drop
    /// verdict is a pure function of `(layer, row, col)` — never of the
    /// sample — so a flagged MAC squashes that weight's product in every
    /// sample lane, exactly as [`Snnac::execute_composed_dropped`] does
    /// sample by sample.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Snnac::execute_batch`].
    pub fn execute_batch_dropped(
        &self,
        program: &Program,
        weights: &FaultedWeights,
        inputs: &[&[f64]],
        drops: Option<&MacDropSpec>,
    ) -> (Vec<Vec<f64>>, NpuStats) {
        let b = inputs.len();
        if b == 0 {
            return (Vec::new(), NpuStats::default());
        }
        if !program.is_dense() {
            // Conv/pool programs run per sample: the whole-layer ops are
            // already raw-integer and deterministic, and the per-sample
            // path is the bit-exactness anchor the batch must match
            // anyway. Stats are per-inference, so one sample's suffice.
            let mut outputs = Vec::with_capacity(b);
            let mut stats = NpuStats::default();
            for (s, input) in inputs.iter().enumerate() {
                let (out, st) = self.execute_composed_dropped(program, weights, input, drops);
                if s == 0 {
                    stats = st;
                }
                outputs.push(out);
            }
            return (outputs, stats);
        }
        let mut stats = NpuStats::default();
        // Quantize each input row through the activation format exactly as
        // the per-sample path quantizes its input FIFO (the lane quantizer
        // is bit-identical to `Fx::from_f64`), then transpose into
        // sample-major lanes: current_raw[c*b + s] holds input c of
        // sample s. The whole batched pipeline stays in the raw integer
        // domain; formats are hoisted, never carried per value.
        let width0 = inputs[0].len();
        let mut rows_raw: Vec<i32> = Vec::with_capacity(width0 * b);
        for input in inputs {
            assert_eq!(input.len(), width0, "ragged batch input widths");
            quantize_lane(input, self.act_fmt, &mut rows_raw);
        }
        let mut current_raw = vec![0i32; width0 * b];
        for (s, row) in rows_raw.chunks_exact(width0.max(1)).enumerate() {
            for (c, &v) in row.iter().enumerate() {
                current_raw[c * b + s] = v;
            }
        }
        let mut next_raw: Vec<i32> = Vec::new();
        let mut fan_in = 0usize;
        let mut layer = 0usize;
        let mut activation = matic_nn::Activation::Sigmoid;
        let mut pending_raw: Vec<i32> = Vec::new(); // narrowed group lanes
        let mut group_dots = vec![0i64; self.pes * b];
        let act_frac = self.act_fmt.frac_bits();
        let afu_in = self.afu.input_format();

        for op in program.ops() {
            match *op {
                MicroOp::SetLayer {
                    layer: l,
                    fan_in: fi,
                    fan_out: fo,
                    activation: act,
                } => {
                    layer = l as usize;
                    fan_in = fi as usize;
                    activation = act;
                    next_raw = Vec::with_capacity(fo as usize * b);
                }
                MicroOp::LoadInput => {
                    assert_eq!(
                        current_raw.len(),
                        fan_in * b,
                        "input width mismatch at layer {layer}"
                    );
                    // Streaming the input vector costs one cycle per
                    // element — per inference, so counted once.
                    stats.cycles += fan_in as u64;
                }
                MicroOp::Macc {
                    neuron_base,
                    active,
                } => {
                    // Per-inference schedule cost, identical for every
                    // sample: counted once.
                    stats.cycles += fan_in as u64 + 1 + self.group_overhead;
                    let tensor = weights.layer(layer);
                    let biases = weights.bias(layer);
                    let base = neuron_base as usize;
                    let group = active as usize;
                    let rows =
                        &tensor.as_raw()[base * tensor.cols()..(base + group) * tensor.cols()];
                    let dots = &mut group_dots[..group * b];
                    match drops {
                        None => fx_matmul(rows, &current_raw, b, dots),
                        Some(d) => fx_matmul_dropped(rows, &current_raw, b, dots, d, layer, base),
                    }
                    // Fold each PE's bias into its sample lane, then
                    // narrow the whole group through the hoisted lane
                    // narrower (bit-identical to the per-value
                    // `Accumulator::narrow_from` chain).
                    pending_raw.clear();
                    for (pe, pe_dots) in dots.chunks_exact_mut(b).enumerate() {
                        stats.sram_reads += fan_in as u64 + 1;
                        stats.macs += fan_in as u64;
                        let bias_raw = (biases[base + pe] as i64) << act_frac;
                        for dot in pe_dots.iter_mut() {
                            *dot += bias_raw;
                        }
                    }
                    narrow_lane(dots, self.weight_fmt, act_frac, afu_in, &mut pending_raw);
                }
                MicroOp::Activate => {
                    // One AFU drain cycle per neuron, per inference.
                    stats.cycles += (pending_raw.len() / b) as u64;
                    self.afu
                        .apply_lane_raw(activation, &pending_raw, &mut next_raw);
                    pending_raw.clear();
                }
                MicroOp::StoreOutput => {
                    stats.cycles += 1;
                    std::mem::swap(&mut current_raw, &mut next_raw);
                    next_raw.clear();
                }
                MicroOp::Conv { .. } | MicroOp::Pool { .. } => {
                    unreachable!("non-dense programs take the per-sample fallback above")
                }
            }
        }
        let fan_out = current_raw.len() / b;
        let outputs = (0..b)
            .map(|s| {
                (0..fan_out)
                    .map(|c| dequantize(current_raw[c * b + s], self.act_fmt))
                    .collect()
            })
            .collect();
        (outputs, stats)
    }

    /// The per-MAC reference path: locate, fetch and decode every weight
    /// word inside the MAC loop, one SRAM read per multiply.
    ///
    /// Kept as the **bit-exactness oracle**: parity tests drive this and
    /// [`Snnac::execute`] over the same inputs and assert identical
    /// outputs, statistics and post-disturb array state. It is not a hot
    /// path — use [`Snnac::execute`] or [`Snnac::execute_composed`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Snnac::execute`].
    pub fn execute_reference(
        &self,
        program: &Program,
        layout: &WeightLayout,
        array: &mut SramArray,
        input: &[f64],
    ) -> (Vec<f64>, NpuStats) {
        self.execute_reference_dropped(program, layout, array, input, None)
    }

    /// [`Snnac::execute_reference`] with TE-Drop error injection: the
    /// per-MAC oracle for [`Snnac::execute_composed_dropped`]. A dropped
    /// MAC still fetches its weight word (the read-disturb side effect
    /// and traffic accounting happen either way) but its product is
    /// squashed before the accumulator.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Snnac::execute_reference`].
    pub fn execute_reference_dropped(
        &self,
        program: &Program,
        layout: &WeightLayout,
        array: &mut SramArray,
        input: &[f64],
        drops: Option<&MacDropSpec>,
    ) -> (Vec<f64>, NpuStats) {
        assert!(
            layout.banks() == array.bank_count(),
            "layout banks {} != array banks {}",
            layout.banks(),
            array.bank_count()
        );
        let mut stats = NpuStats::default();
        // The input FIFO holds the current layer's inputs (activation fmt).
        let mut current: Vec<Fx> = input
            .iter()
            .map(|&x| Fx::from_f64(x, self.act_fmt))
            .collect();
        let mut next: Vec<Fx> = Vec::new();
        let mut fan_in = 0usize;
        let mut layer = 0usize;
        let mut activation = matic_nn::Activation::Sigmoid;
        let mut pending: Vec<Fx> = Vec::new(); // accumulator-drained group

        for op in program.ops() {
            match *op {
                MicroOp::SetLayer {
                    layer: l,
                    fan_in: fi,
                    fan_out: fo,
                    activation: act,
                } => {
                    layer = l as usize;
                    fan_in = fi as usize;
                    activation = act;
                    next = Vec::with_capacity(fo as usize);
                }
                MicroOp::LoadInput => {
                    assert_eq!(
                        current.len(),
                        fan_in,
                        "input width mismatch at layer {layer}"
                    );
                    // Streaming the input vector costs one cycle per element.
                    stats.cycles += fan_in as u64;
                }
                MicroOp::Macc {
                    neuron_base,
                    active,
                } => {
                    // All active PEs run in lock-step: fan_in MAC cycles,
                    // one bias-fetch cycle, plus fill/drain overhead.
                    stats.cycles += fan_in as u64 + 1 + self.group_overhead;
                    pending.clear();
                    for pe in 0..active as usize {
                        let neuron = neuron_base as usize + pe;
                        let mut acc = Accumulator::new();
                        for (col, x) in current.iter().enumerate() {
                            let loc = layout.location_of(ParamRef::Weight {
                                layer,
                                row: neuron,
                                col,
                            });
                            let word = array.read(loc.bank, loc.word);
                            let w = Fx::from_word(word, self.weight_fmt);
                            if !drops.is_some_and(|d| d.dropped(layer, neuron, col)) {
                                acc.mac(w, *x);
                            }
                            stats.sram_reads += 1;
                            stats.macs += 1;
                        }
                        let loc = layout.location_of(ParamRef::Bias { layer, row: neuron });
                        let word = array.read(loc.bank, loc.word);
                        let bias = Fx::from_word(word, self.weight_fmt);
                        acc.add_bias(bias, self.act_fmt);
                        stats.sram_reads += 1;
                        // Narrow the wide accumulator to the AFU input.
                        pending.push(acc.narrow_from(
                            self.weight_fmt,
                            self.act_fmt.frac_bits(),
                            self.afu.input_format(),
                        ));
                    }
                }
                MicroOp::Activate => {
                    // The AFU drains one value per cycle.
                    stats.cycles += pending.len() as u64;
                    for z in pending.drain(..) {
                        next.push(self.afu.apply(activation, z));
                    }
                }
                MicroOp::StoreOutput => {
                    stats.cycles += 1;
                    current = std::mem::take(&mut next);
                }
                MicroOp::Conv {
                    layer: l,
                    in_h,
                    in_w,
                    in_c,
                    filters,
                    kernel,
                    activation: act,
                } => {
                    let layer = l as usize;
                    let (in_h, in_w, in_c) = (in_h as usize, in_w as usize, in_c as usize);
                    let (filters, kernel) = (filters as usize, kernel as usize);
                    let (out_h, out_w) = (in_h + 1 - kernel, in_w + 1 - kernel);
                    let k2c = kernel * kernel * in_c;
                    let in_width = in_h * in_w * in_c;
                    assert_eq!(
                        current.len(),
                        in_width,
                        "input width mismatch at layer {layer}"
                    );
                    stats.cycles += in_width as u64;
                    let groups = filters.div_ceil(self.pes) as u64;
                    let mut out = Vec::with_capacity(out_h * out_w * filters);
                    for oy in 0..out_h {
                        for ox in 0..out_w {
                            stats.cycles += groups * (k2c as u64 + 1 + self.group_overhead);
                            for f in 0..filters {
                                let mut acc = Accumulator::new();
                                // Taps in (ky, kx, c) order = weight
                                // columns; every word is fetched inside
                                // the MAC loop, one SRAM read per
                                // multiply, exactly like the dense oracle.
                                let mut col = 0;
                                for ky in 0..kernel {
                                    for kx in 0..kernel {
                                        let base = ((oy + ky) * in_w + (ox + kx)) * in_c;
                                        for c in 0..in_c {
                                            let loc = layout.location_of(ParamRef::Weight {
                                                layer,
                                                row: f,
                                                col,
                                            });
                                            let word = array.read(loc.bank, loc.word);
                                            let w = Fx::from_word(word, self.weight_fmt);
                                            if !drops.is_some_and(|d| d.dropped(layer, f, col)) {
                                                acc.mac(w, current[base + c]);
                                            }
                                            stats.sram_reads += 1;
                                            stats.macs += 1;
                                            col += 1;
                                        }
                                    }
                                }
                                let loc = layout.location_of(ParamRef::Bias { layer, row: f });
                                let word = array.read(loc.bank, loc.word);
                                let bias = Fx::from_word(word, self.weight_fmt);
                                acc.add_bias(bias, self.act_fmt);
                                stats.sram_reads += 1;
                                let z = acc.narrow_from(
                                    self.weight_fmt,
                                    self.act_fmt.frac_bits(),
                                    self.afu.input_format(),
                                );
                                out.push(self.afu.apply(act, z));
                            }
                        }
                    }
                    stats.cycles += (out_h * out_w * filters) as u64 + 1;
                    current = out;
                }
                MicroOp::Pool {
                    in_h,
                    in_w,
                    channels,
                    window,
                } => {
                    let (in_h, in_w) = (in_h as usize, in_w as usize);
                    let (channels, window) = (channels as usize, window as usize);
                    let (out_h, out_w) = (in_h / window, in_w / window);
                    let in_width = in_h * in_w * channels;
                    assert_eq!(current.len(), in_width, "input width mismatch at pool");
                    let mut out = Vec::with_capacity(out_h * out_w * channels);
                    for oy in 0..out_h {
                        for ox in 0..out_w {
                            for c in 0..channels {
                                let mut best =
                                    current[((oy * window) * in_w + ox * window) * channels + c];
                                for ky in 0..window {
                                    for kx in 0..window {
                                        let v = current[((oy * window + ky) * in_w
                                            + (ox * window + kx))
                                            * channels
                                            + c];
                                        if v.raw() > best.raw() {
                                            best = v;
                                        }
                                    }
                                }
                                out.push(best);
                            }
                        }
                    }
                    stats.cycles += (in_width + out_h * out_w * channels) as u64 + 1;
                    current = out;
                }
            }
        }
        (current.iter().map(|fx| fx.to_f64()).collect(), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matic_core::{train_naive, MatConfig};
    use matic_nn::{NetSpec, Sample, SgdConfig};
    use matic_sram::{ArrayConfig, SramConfig, VminDistribution};

    fn array(banks: usize, words: usize, seed: u64) -> SramArray {
        SramArray::synthesize(
            &ArrayConfig {
                banks,
                bank: SramConfig {
                    words,
                    word_bits: 16,
                    dist: VminDistribution::date2018(),
                },
            },
            seed,
        )
    }

    /// Uploads a model and runs both the float reference and the NPU.
    fn run_both(spec: &NetSpec, input: &[f64], seed: u64) -> (Vec<f64>, Vec<f64>, NpuStats) {
        let data: Vec<Sample> = (0..32)
            .map(|i| {
                let x = i as f64 / 32.0;
                Sample::new(
                    vec![x; spec.layers[0]],
                    vec![0.5; *spec.layers.last().unwrap()],
                )
            })
            .collect();
        let cfg = MatConfig {
            sgd: SgdConfig {
                epochs: 5,
                ..SgdConfig::default()
            },
            ..MatConfig::paper()
        };
        let model = train_naive(spec, &data, &cfg, 8, 576);
        let mut arr = array(8, 576, seed);
        matic_core::upload_weights(&model, &mut arr);
        let npu = Snnac::snnac(model.format());
        let program = Program::compile(spec, npu.pe_count());
        let (out, stats) = npu.execute(&program, model.layout(), &mut arr, input);
        let reference = model.quantized().forward(input);
        (out, reference, stats)
    }

    #[test]
    fn matches_float_reference_small_net() {
        let spec = NetSpec::classifier(&[4, 6, 3]);
        let (out, reference, _) = run_both(&spec, &[0.2, 0.8, 0.1, 0.5], 3);
        for (a, b) in out.iter().zip(&reference) {
            assert!(
                (a - b).abs() < 0.01,
                "NPU {a} vs reference {b} (fixed-point tolerance)"
            );
        }
    }

    #[test]
    fn matches_float_reference_wide_layer() {
        // Wider than the PE ring: exercises time multiplexing.
        let spec = NetSpec::classifier(&[10, 20, 4]);
        let input: Vec<f64> = (0..10).map(|i| i as f64 / 10.0).collect();
        let (out, reference, _) = run_both(&spec, &input, 5);
        assert_eq!(out.len(), 4);
        for (a, b) in out.iter().zip(&reference) {
            assert!((a - b).abs() < 0.01, "NPU {a} vs reference {b}");
        }
    }

    #[test]
    fn regression_linear_output() {
        let spec = NetSpec::regressor(&[2, 8, 2]);
        let (out, reference, _) = run_both(&spec, &[0.3, 0.6], 7);
        for (a, b) in out.iter().zip(&reference) {
            assert!((a - b).abs() < 0.01, "NPU {a} vs reference {b}");
        }
    }

    #[test]
    fn cycle_accounting_matches_model() {
        let spec = NetSpec::classifier(&[100, 32, 10]);
        let input = vec![0.1; 100];
        let (_, _, stats) = run_both(&spec, &input, 9);
        // Layer 1: load 100 + 4 groups × (100 + 1 + 4) + 32 AFU + 1 store.
        // Layer 2: load 32 + 2 groups × (32 + 1 + 4) + 10 AFU + 1 store.
        let expect = (100 + 4 * 105 + 32 + 1) + (32 + 2 * 37 + 10 + 1);
        assert_eq!(stats.cycles, expect as u64);
        // MACs: 100×32 + 32×10; reads add one bias word per neuron.
        assert_eq!(stats.macs, 100 * 32 + 32 * 10);
        assert_eq!(stats.sram_reads, stats.macs + 32 + 10);
    }

    #[test]
    fn dropped_paths_agree_and_none_is_identity() {
        let spec = NetSpec::classifier(&[9, 14, 3]);
        let input: Vec<f64> = (0..9).map(|i| i as f64 / 9.0 - 0.4).collect();
        let data: Vec<Sample> = (0..16)
            .map(|i| Sample::new(vec![i as f64 / 16.0; 9], vec![0.5; 3]))
            .collect();
        let cfg = MatConfig {
            sgd: SgdConfig {
                epochs: 3,
                ..SgdConfig::default()
            },
            ..MatConfig::paper()
        };
        let model = train_naive(&spec, &data, &cfg, 8, 576);
        let npu = Snnac::snnac(model.format());
        let program = Program::compile(&spec, npu.pe_count());
        let mut arr = array(8, 576, 13);
        matic_core::upload_weights(&model, &mut arr);

        let drops = MacDropSpec::new(77, 0.3);
        let weights = FaultedWeights::from_array(model.layout(), model.format(), &mut arr);
        let (composed, cstats) =
            npu.execute_composed_dropped(&program, &weights, &input, Some(&drops));
        let (reference, rstats) =
            npu.execute_reference_dropped(&program, model.layout(), &mut arr, &input, Some(&drops));
        assert_eq!(composed, reference, "dropped paths must agree bit-exactly");
        assert_eq!(cstats, rstats, "a dropped MAC still occupies its slot");

        // With no drop spec the dropped entry points are the plain paths.
        let (plain, _) = npu.execute_composed(&program, &weights, &input);
        let (none, _) = npu.execute_composed_dropped(&program, &weights, &input, None);
        assert_eq!(plain, none);
        assert_ne!(plain, composed, "a 30 % drop rate must perturb the output");
    }

    #[test]
    fn batched_execute_matches_per_sample_outputs_and_stats() {
        let spec = NetSpec::classifier(&[9, 14, 3]);
        let data: Vec<Sample> = (0..16)
            .map(|i| Sample::new(vec![i as f64 / 16.0; 9], vec![0.5; 3]))
            .collect();
        let cfg = MatConfig {
            sgd: SgdConfig {
                epochs: 3,
                ..SgdConfig::default()
            },
            ..MatConfig::paper()
        };
        let model = train_naive(&spec, &data, &cfg, 8, 576);
        let npu = Snnac::snnac(model.format());
        let program = Program::compile(&spec, npu.pe_count());
        let mut arr = array(8, 576, 17);
        matic_core::upload_weights(&model, &mut arr);
        let weights = FaultedWeights::from_array(model.layout(), model.format(), &mut arr);

        let inputs: Vec<Vec<f64>> = (0..7)
            .map(|i| {
                (0..9)
                    .map(|c| ((i * 5 + c) % 11) as f64 / 11.0 - 0.3)
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();
        let drops = MacDropSpec::new(55, 0.25);
        for d in [None, Some(&drops)] {
            for b in [1usize, 2, 3, 7] {
                let (batched, bstats) =
                    npu.execute_batch_dropped(&program, &weights, &refs[..b], d);
                for (input, out) in refs[..b].iter().zip(&batched) {
                    let (single, sstats) =
                        npu.execute_composed_dropped(&program, &weights, input, d);
                    assert_eq!(out, &single, "batch {b} drops {}", d.is_some());
                    // Stats are data-independent, so the batch reports the
                    // per-inference counters every sample shares.
                    assert_eq!(bstats, sstats, "batch {b} drops {}", d.is_some());
                }
            }
        }
        let (empty, stats) = npu.execute_batch(&program, &weights, &[]);
        assert!(empty.is_empty());
        assert_eq!(stats, NpuStats::default());
    }

    #[test]
    fn overscaled_reads_perturb_output() {
        let spec = NetSpec::classifier(&[8, 12, 3]);
        let input = vec![0.5; 8];
        let data: Vec<Sample> = (0..16)
            .map(|i| Sample::new(vec![i as f64 / 16.0; 8], vec![0.5; 3]))
            .collect();
        let cfg = MatConfig {
            sgd: SgdConfig {
                epochs: 3,
                ..SgdConfig::default()
            },
            ..MatConfig::paper()
        };
        let model = train_naive(&spec, &data, &cfg, 8, 576);
        let npu = Snnac::snnac(model.format());
        let program = Program::compile(&spec, npu.pe_count());

        let mut arr = array(8, 576, 21);
        matic_core::upload_weights(&model, &mut arr);
        let (clean, _) = npu.execute(&program, model.layout(), &mut arr, &input);

        // Re-upload, overscale hard, run again: outputs should differ
        // (46 % of cells sit past their Vmin at 0.46 V).
        arr.set_operating_point(0.9, 25.0);
        matic_core::upload_weights(&model, &mut arr);
        arr.set_operating_point(0.46, 25.0);
        let (noisy, _) = npu.execute(&program, model.layout(), &mut arr, &input);
        assert_ne!(clean, noisy, "overscaling must corrupt the weight stream");
    }

    /// Trains a small conv-pool-dense model and uploads it.
    fn conv_fixture(seed: u64) -> (NetSpec, matic_core::TrainedModel, SramArray) {
        let spec = NetSpec::parse_topology("6x6x1;conv3x4;pool2;dense3").unwrap();
        let data: Vec<Sample> = (0..12)
            .map(|i| {
                Sample::new(
                    (0..36)
                        .map(|c| ((i * 13 + c * 5) % 31) as f64 / 31.0)
                        .collect(),
                    vec![0.5; 3],
                )
            })
            .collect();
        let cfg = MatConfig {
            sgd: SgdConfig {
                epochs: 3,
                ..SgdConfig::default()
            },
            ..MatConfig::paper()
        };
        let model = train_naive(&spec, &data, &cfg, 8, 576);
        let mut arr = array(8, 576, seed);
        matic_core::upload_weights(&model, &mut arr);
        (spec, model, arr)
    }

    #[test]
    fn conv_chain_paths_agree_bit_exactly() {
        let (spec, model, mut arr) = conv_fixture(23);
        let npu = Snnac::snnac(model.format());
        let program = Program::compile(&spec, npu.pe_count());
        assert!(!program.is_dense());
        let weights = FaultedWeights::from_array(model.layout(), model.format(), &mut arr);
        let input: Vec<f64> = (0..36)
            .map(|i| ((i * 7 + 3) % 29) as f64 / 29.0 - 0.35)
            .collect();

        for drops in [None, Some(MacDropSpec::new(91, 0.2))] {
            let d = drops.as_ref();
            let (composed, cstats) = npu.execute_composed_dropped(&program, &weights, &input, d);
            let (reference, rstats) =
                npu.execute_reference_dropped(&program, model.layout(), &mut arr, &input, d);
            assert_eq!(composed, reference, "conv composed vs per-MAC oracle");
            assert_eq!(cstats, rstats, "conv traffic/cycle model must match");
        }

        // The quantized float model agrees to fixed-point/AFU tolerance.
        let (out, _) = npu.execute_composed(&program, &weights, &input);
        let reference = model.quantized().forward(&input);
        assert_eq!(out.len(), 3);
        for (a, b) in out.iter().zip(&reference) {
            assert!((a - b).abs() < 0.05, "NPU {a} vs quantized reference {b}");
        }
    }

    #[test]
    fn conv_cycle_accounting_matches_model() {
        let (spec, model, mut arr) = conv_fixture(27);
        let npu = Snnac::snnac(model.format());
        let program = Program::compile(&spec, npu.pe_count());
        let weights = FaultedWeights::from_array(model.layout(), model.format(), &mut arr);
        let input: Vec<f64> = (0..36).map(|i| i as f64 / 36.0).collect();
        let (_, stats) = npu.execute_composed(&program, &weights, &input);
        // Conv 6x6x1 → 4x4x4 with 3x3 taps: load 36, 16 positions × 1
        // group × (9 + 1 + 4), 64 AFU drains, 1 store.
        let conv = 36 + 16 * (9 + 1 + 4) + 64 + 1;
        // Pool 4x4x4 → 2x2x4: 64 scans + 16 drains + 1 store.
        let pool = 64 + 16 + 1;
        // Dense 16 → 3: load 16, 1 group × (16 + 1 + 4), 3 AFU, 1 store.
        let dense = 16 + (16 + 1 + 4) + 3 + 1;
        assert_eq!(stats.cycles, (conv + pool + dense) as u64);
        // MACs: 16 positions × 4 filters × 9 taps + 16×3 dense; reads add
        // one bias word per (position, filter) and per dense neuron.
        assert_eq!(stats.macs, 16 * 4 * 9 + 16 * 3);
        assert_eq!(stats.sram_reads, stats.macs + 16 * 4 + 3);
    }

    #[test]
    fn batched_conv_chain_matches_per_sample() {
        let (spec, model, mut arr) = conv_fixture(31);
        let npu = Snnac::snnac(model.format());
        let program = Program::compile(&spec, npu.pe_count());
        let weights = FaultedWeights::from_array(model.layout(), model.format(), &mut arr);
        let inputs: Vec<Vec<f64>> = (0..5)
            .map(|s| {
                (0..36)
                    .map(|c| ((s * 17 + c * 3) % 23) as f64 / 23.0 - 0.2)
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();
        let drops = MacDropSpec::new(45, 0.25);
        for d in [None, Some(&drops)] {
            let (batched, bstats) = npu.execute_batch_dropped(&program, &weights, &refs, d);
            for (input, out) in refs.iter().zip(&batched) {
                let (single, sstats) = npu.execute_composed_dropped(&program, &weights, input, d);
                assert_eq!(out, &single);
                assert_eq!(bstats, sstats);
            }
        }
    }
}
