//! Property-based tests over the accelerator simulator.

use crate::afu::Afu;
use crate::microcode::{MicroOp, Program};
use crate::msp430::{assemble, Instr, Msp430, NullMmio, Operand};
use crate::regulator::VoltageRegulator;
use matic_fixed::Fx;
use matic_nn::{Activation, NetSpec};
use proptest::prelude::*;

proptest! {
    /// The PWL sigmoid is monotone, bounded to [0, 1], and within its
    /// error budget of the exact function everywhere.
    #[test]
    fn afu_sigmoid_properties(x in -20.0f64..20.0, dx in 0.0f64..2.0) {
        let afu = Afu::snnac();
        let f = afu.input_format();
        let clamp = |v: f64| v.clamp(f.min_value(), f.max_value());
        let y1 = afu.apply(Activation::Sigmoid, Fx::from_f64(clamp(x), f)).to_f64();
        let y2 = afu.apply(Activation::Sigmoid, Fx::from_f64(clamp(x + dx), f)).to_f64();
        prop_assert!((0.0..=1.0).contains(&y1));
        prop_assert!(y2 >= y1 - 1e-9, "non-monotone at {x}");
        let exact = 1.0 / (1.0 + (-clamp(x)).exp());
        prop_assert!((y1 - exact).abs() < 0.005);
    }

    /// ReLU through the AFU equals max(0, x) up to output quantization.
    #[test]
    fn afu_relu_property(x in -30.0f64..30.0) {
        let afu = Afu::snnac();
        let f = afu.input_format();
        let xc = x.clamp(f.min_value(), f.max_value());
        let y = afu.apply(Activation::Relu, Fx::from_f64(xc, f)).to_f64();
        let expect = xc.max(0.0).clamp(0.0, afu.output_format().max_value());
        prop_assert!((y - expect).abs() <= afu.output_format().lsb() + f.lsb());
    }

    /// Microcode covers every neuron of every layer exactly once.
    #[test]
    fn microcode_covers_all_neurons(
        l0 in 1usize..40, l1 in 1usize..40, l2 in 1usize..40, pes in 1usize..12,
    ) {
        let spec = NetSpec::classifier(&[l0, l1, l2]);
        let prog = Program::compile(&spec, pes);
        let mut current_layer = usize::MAX;
        let mut covered: Vec<Vec<bool>> = vec![vec![false; l1], vec![false; l2]];
        for op in prog.ops() {
            match *op {
                MicroOp::SetLayer { layer, .. } => current_layer = layer as usize,
                MicroOp::Macc { neuron_base, active } => {
                    let range = neuron_base as usize..(neuron_base + active) as usize;
                    for slot in &mut covered[current_layer][range] {
                        prop_assert!(!*slot, "neuron covered twice");
                        *slot = true;
                    }
                    prop_assert!(active as usize <= pes);
                }
                _ => {}
            }
        }
        prop_assert!(covered.iter().all(|l| l.iter().all(|&c| c)));
    }

    /// Regulator set-points always land on the LSB grid inside the range,
    /// and stepping is inverse-consistent.
    #[test]
    fn regulator_grid_invariants(mv in 0u32..2000) {
        let mut r = VoltageRegulator::snnac_sram_rail();
        let set = r.set_mv(mv);
        prop_assert_eq!(set % r.lsb_mv(), 0);
        prop_assert!((400..=900).contains(&set));
        let down = r.step_down();
        if down > 400 {
            prop_assert_eq!(r.step_up(), set.max(405));
        }
    }

    /// MSP430 ADD/SUB are inverse operations and flags reflect zero/sign.
    #[test]
    fn msp430_add_sub_roundtrip(a in 0u16..=u16::MAX, b in 0u16..=u16::MAX) {
        let prog = vec![
            Instr::Mov(Operand::Imm(a), Operand::Reg(4)),
            Instr::Add(Operand::Imm(b), Operand::Reg(4)),
            Instr::Sub(Operand::Imm(b), Operand::Reg(4)),
            Instr::Cmp(Operand::Imm(a), Operand::Reg(4)),
            Instr::Halt,
        ];
        let mut cpu = Msp430::new(16);
        cpu.run(&prog, &mut NullMmio, 10).unwrap();
        prop_assert_eq!(cpu.reg(4), a);
        prop_assert!(cpu.flags().z, "CMP of equal values must set Z");
    }

    /// Signed comparison through JL/JGE agrees with i16 ordering.
    #[test]
    fn msp430_signed_compare(a in i16::MIN..=i16::MAX, b in i16::MIN..=i16::MAX) {
        let src = format!(
            "MOV #{}, r4\n\
             CMP #{}, r4\n\
             JL less\n\
             MOV #0, r6\n\
             JMP end\n\
             less:\n\
             MOV #1, r6\n\
             end:\n\
             HALT",
            a as u16, b as u16
        );
        let prog = assemble(&src).unwrap();
        let mut cpu = Msp430::new(16);
        cpu.run(&prog, &mut NullMmio, 20).unwrap();
        prop_assert_eq!(cpu.reg(6) == 1, a < b, "a = {}, b = {}", a, b);
    }

    /// The assembler round-trips every register/immediate/absolute operand
    /// form it prints.
    #[test]
    fn assembler_operand_forms(reg in 0u8..16, imm in 0u16..=u16::MAX, addr in 0u16..0xFF00) {
        let src = format!("MOV #{imm}, r{reg}\nMOV r{reg}, &{addr}\nHALT");
        let prog = assemble(&src).unwrap();
        prop_assert_eq!(prog.len(), 3);
        let mut cpu = Msp430::new(0x10000);
        cpu.run(&prog, &mut NullMmio, 10).unwrap();
        prop_assert_eq!(cpu.reg(reg), imm);
    }
}
