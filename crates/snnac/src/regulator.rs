//! The digitally-programmable voltage regulator model.
//!
//! The test chip's SRAM rail is driven by external digitally-programmable
//! regulators commanded by the host/µC (§III-A, §V-C). The model exposes
//! the same contract: millivolt set-points snapped to an LSB, clamped to a
//! safe range.

use serde::{Deserialize, Serialize};

/// A programmable supply-rail regulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoltageRegulator {
    mv: u32,
    lsb_mv: u32,
    min_mv: u32,
    max_mv: u32,
}

impl VoltageRegulator {
    /// A regulator with 5 mV resolution spanning 0.40–0.90 V, initialized
    /// at the maximum (safe) setting.
    pub fn snnac_sram_rail() -> Self {
        VoltageRegulator {
            mv: 900,
            lsb_mv: 5,
            min_mv: 400,
            max_mv: 900,
        }
    }

    /// Builds a regulator.
    ///
    /// # Panics
    ///
    /// Panics unless `min_mv ≤ max_mv`, `lsb_mv > 0`, and both bounds are
    /// multiples of the LSB.
    pub fn new(lsb_mv: u32, min_mv: u32, max_mv: u32) -> Self {
        assert!(lsb_mv > 0, "LSB must be positive");
        assert!(min_mv <= max_mv, "inverted range");
        assert!(
            min_mv.is_multiple_of(lsb_mv) && max_mv.is_multiple_of(lsb_mv),
            "bounds must be LSB-aligned"
        );
        VoltageRegulator {
            mv: max_mv,
            lsb_mv,
            min_mv,
            max_mv,
        }
    }

    /// Current setting in volts.
    pub fn volts(&self) -> f64 {
        self.mv as f64 / 1000.0
    }

    /// Current setting in millivolts.
    pub fn millivolts(&self) -> u32 {
        self.mv
    }

    /// The step size in millivolts.
    pub fn lsb_mv(&self) -> u32 {
        self.lsb_mv
    }

    /// Programs a set-point in millivolts; snaps to the LSB grid
    /// (round-to-nearest) and clamps to the range. Returns the actual
    /// setting.
    pub fn set_mv(&mut self, mv: u32) -> u32 {
        let snapped = (mv + self.lsb_mv / 2) / self.lsb_mv * self.lsb_mv;
        self.mv = snapped.clamp(self.min_mv, self.max_mv);
        self.mv
    }

    /// Steps one LSB down; saturates at the minimum. Returns the setting.
    pub fn step_down(&mut self) -> u32 {
        self.mv = self.mv.saturating_sub(self.lsb_mv).max(self.min_mv);
        self.mv
    }

    /// Steps one LSB up; saturates at the maximum. Returns the setting.
    pub fn step_up(&mut self) -> u32 {
        self.mv = (self.mv + self.lsb_mv).min(self.max_mv);
        self.mv
    }
}

impl Default for VoltageRegulator {
    fn default() -> Self {
        Self::snnac_sram_rail()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapping_and_clamping() {
        let mut r = VoltageRegulator::snnac_sram_rail();
        assert_eq!(r.set_mv(503), 505);
        assert_eq!(r.set_mv(502), 500);
        assert_eq!(r.set_mv(2000), 900);
        assert_eq!(r.set_mv(100), 400);
    }

    #[test]
    fn stepping_saturates() {
        let mut r = VoltageRegulator::new(5, 400, 410);
        assert_eq!(r.volts(), 0.41);
        assert_eq!(r.step_down(), 405);
        assert_eq!(r.step_down(), 400);
        assert_eq!(r.step_down(), 400);
        assert_eq!(r.step_up(), 405);
        assert_eq!(r.step_up(), 410);
        assert_eq!(r.step_up(), 410);
    }

    #[test]
    #[should_panic(expected = "LSB-aligned")]
    fn misaligned_bounds_rejected() {
        VoltageRegulator::new(5, 402, 900);
    }
}
