//! SoC integration: the NPU as a memory-mapped peripheral of the µC.
//!
//! Fig. 8 of the paper: "To minimize data movement, NPU input and output
//! data buffers are memory-mapped directly to the µC data address space",
//! with a memory arbiter between the cores and shared DMEM. This module
//! provides that view: an [`Mmio`] bus exposing the NPU's input FIFO,
//! output buffer and control/status registers, plus the host-style
//! assembly routine that stages inputs from DMEM, kicks the NPU and
//! collects the outputs — so a whole inference is driven end-to-end by
//! MSP430 machine code, exactly like application code on the test chip.

use crate::microcode::Program;
use crate::msp430::{assemble, Instr, Mmio, Msp430};
use crate::npu::{NpuStats, Snnac};
use matic_core::WeightLayout;
use matic_fixed::Fx;
use matic_sram::SramArray;

/// NPU peripheral memory map (all ≥ [`crate::msp430::MMIO_BASE`]).
pub mod npu_map {
    /// W: 1 = run one inference over the staged input.
    pub const NPU_CTRL: u16 = 0xE000;
    /// R: 1 when the last inference finished.
    pub const NPU_STATUS: u16 = 0xE002;
    /// Base of the input-activation buffer (raw Q1.14 words).
    pub const NPU_IN: u16 = 0xE100;
    /// Base of the output-activation buffer (raw Q1.14 words).
    pub const NPU_OUT: u16 = 0xE800;
}

/// DMEM staging addresses used by [`inference_program`].
pub mod dmem_map {
    /// Input vector staged by the host/application.
    pub const INPUT: u16 = 0x0100;
    /// Output vector written back by the routine.
    pub const OUTPUT: u16 = 0x0400;
}

/// The NPU as a bus peripheral: owns staging buffers and drives the real
/// datapath (weight banks included) when `NPU_CTRL` is written.
pub struct NpuPeripheral<'a> {
    npu: &'a Snnac,
    program: &'a Program,
    layout: &'a WeightLayout,
    array: &'a mut SramArray,
    input: Vec<u16>,
    output: Vec<u16>,
    fan_in: usize,
    done: bool,
    /// Cycle statistics of the last inference.
    pub last_stats: NpuStats,
}

impl<'a> NpuPeripheral<'a> {
    /// Creates the peripheral for a deployed network.
    pub fn new(
        npu: &'a Snnac,
        program: &'a Program,
        layout: &'a WeightLayout,
        array: &'a mut SramArray,
    ) -> Self {
        let fan_in = layout.spec().layers[0];
        let fan_out = *layout.spec().layers.last().unwrap();
        NpuPeripheral {
            npu,
            program,
            layout,
            array,
            input: vec![0; fan_in],
            output: vec![0; fan_out],
            fan_in,
            done: false,
            last_stats: NpuStats::default(),
        }
    }

    fn run(&mut self) {
        let act = self.npu.activation_format();
        let input_f64: Vec<f64> = self
            .input
            .iter()
            .map(|&w| Fx::from_word(w as u32, act).to_f64())
            .collect();
        let (out, stats) = self
            .npu
            .execute(self.program, self.layout, self.array, &input_f64);
        self.last_stats = stats;
        for (slot, y) in self.output.iter_mut().zip(&out) {
            *slot = Fx::from_f64(*y, act).to_word() as u16;
        }
        self.done = true;
    }
}

impl Mmio for NpuPeripheral<'_> {
    fn read(&mut self, addr: u16) -> u16 {
        match addr {
            npu_map::NPU_STATUS => self.done as u16,
            a if (npu_map::NPU_IN..npu_map::NPU_IN + self.input.len() as u16).contains(&a) => {
                self.input[(a - npu_map::NPU_IN) as usize]
            }
            a if (npu_map::NPU_OUT..npu_map::NPU_OUT + self.output.len() as u16).contains(&a) => {
                self.output[(a - npu_map::NPU_OUT) as usize]
            }
            _ => 0,
        }
    }

    fn write(&mut self, addr: u16, value: u16) {
        match addr {
            npu_map::NPU_CTRL if value == 1 => {
                self.done = false;
                self.run();
            }
            a if (npu_map::NPU_IN..npu_map::NPU_IN + self.fan_in as u16).contains(&a) => {
                self.input[(a - npu_map::NPU_IN) as usize] = value;
            }
            _ => {}
        }
    }
}

/// The µC inference routine: copies `fan_in` staged words from DMEM into
/// the NPU input buffer, triggers the NPU, busy-waits on the status
/// register, and copies `fan_out` results back to DMEM.
pub fn inference_program(fan_in: usize, fan_out: usize) -> String {
    format!(
        r"
; stage input: DMEM[0x100..] -> NPU_IN
        MOV #{dm_in}, r4
        MOV #{npu_in}, r5
        MOV #{fan_in}, r7
stage:
        MOV @r4, r8
        MOV r8, @r5
        ADD #1, r4
        ADD #1, r5
        SUB #1, r7
        CMP #0, r7
        JNZ stage
; kick the NPU and wait for completion
        MOV #1, &{ctrl}
wait:
        MOV &{status}, r8
        CMP #1, r8
        JNZ wait
; collect output: NPU_OUT -> DMEM[0x400..]
        MOV #{npu_out}, r4
        MOV #{dm_out}, r5
        MOV #{fan_out}, r7
collect:
        MOV @r4, r8
        MOV r8, @r5
        ADD #1, r4
        ADD #1, r5
        SUB #1, r7
        CMP #0, r7
        JNZ collect
        HALT
",
        dm_in = dmem_map::INPUT,
        dm_out = dmem_map::OUTPUT,
        npu_in = npu_map::NPU_IN,
        npu_out = npu_map::NPU_OUT,
        ctrl = npu_map::NPU_CTRL,
        status = npu_map::NPU_STATUS,
    )
}

/// Runs one inference entirely under µC control: stages `input` in DMEM,
/// executes [`inference_program`] on a fresh core, and returns the output
/// activations (as reals) plus the NPU statistics.
///
/// # Panics
///
/// Panics if the routine fails to assemble or exceeds its step budget
/// (cannot happen with the shipped program and sane layer sizes).
pub fn run_inference_via_uc(
    npu: &Snnac,
    program: &Program,
    layout: &WeightLayout,
    array: &mut SramArray,
    input: &[f64],
) -> (Vec<f64>, NpuStats) {
    let fan_in = layout.spec().layers[0];
    let fan_out = *layout.spec().layers.last().unwrap();
    assert_eq!(input.len(), fan_in, "input width mismatch");
    let act = npu.activation_format();

    let src = inference_program(fan_in, fan_out);
    let code: Vec<Instr> = assemble(&src).expect("inference routine assembles");
    let mut cpu = Msp430::new(0x1000);
    // Stage the input vector in DMEM as raw activation words.
    for (i, &x) in input.iter().enumerate() {
        let word = Fx::from_f64(x, act).to_word() as u16;
        cpu_store(&mut cpu, dmem_map::INPUT + i as u16, word);
    }
    let mut bus = NpuPeripheral::new(npu, program, layout, array);
    cpu.run(&code, &mut bus, 1_000_000)
        .expect("inference routine halts");
    let out = (0..fan_out)
        .map(|i| {
            let w = cpu_load(&mut cpu, dmem_map::OUTPUT + i as u16);
            Fx::from_word(w as u32, act).to_f64()
        })
        .collect();
    (out, bus.last_stats)
}

/// Host-side DMEM access helpers (the real chip exposes DMEM over UART;
/// here the host writes the core's RAM directly).
fn cpu_store(cpu: &mut Msp430, addr: u16, value: u16) {
    let mut nop = crate::msp430::NullMmio;
    // Reuse the core's store path through a tiny program-free poke:
    // registers r14/r15 are scratch by convention.
    cpu.set_reg(14, addr);
    cpu.set_reg(15, value);
    let poke = [
        Instr::Mov(
            crate::msp430::Operand::Reg(15),
            crate::msp430::Operand::Ind(14),
        ),
        Instr::Halt,
    ];
    cpu.run(&poke, &mut nop, 4).expect("poke");
}

fn cpu_load(cpu: &mut Msp430, addr: u16) -> u16 {
    let mut nop = crate::msp430::NullMmio;
    cpu.set_reg(14, addr);
    let peek = [
        Instr::Mov(
            crate::msp430::Operand::Ind(14),
            crate::msp430::Operand::Reg(15),
        ),
        Instr::Halt,
    ];
    cpu.run(&peek, &mut nop, 4).expect("peek");
    cpu.reg(15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use matic_core::{train_naive, upload_weights, MatConfig};
    use matic_nn::{NetSpec, Sample, SgdConfig};
    use matic_sram::{ArrayConfig, SramArray};

    fn setup() -> (Snnac, Program, matic_core::TrainedModel, SramArray) {
        let spec = NetSpec::regressor(&[3, 6, 2]);
        let data: Vec<Sample> = (0..24)
            .map(|i| {
                let x = i as f64 / 24.0;
                Sample::new(vec![x, 1.0 - x, 0.5], vec![0.4 * x + 0.1, 0.3])
            })
            .collect();
        let cfg = MatConfig {
            sgd: SgdConfig {
                epochs: 8,
                ..SgdConfig::default()
            },
            ..MatConfig::paper()
        };
        let model = train_naive(&spec, &data, &cfg, 8, 576);
        let mut array = SramArray::synthesize(&ArrayConfig::snnac(), 77);
        upload_weights(&model, &mut array);
        let npu = Snnac::snnac(model.format());
        let program = Program::compile(&spec, npu.pe_count());
        (npu, program, model, array)
    }

    #[test]
    fn uc_driven_inference_matches_direct_npu_exactly() {
        let (npu, program, model, mut array) = setup();
        let input = [0.25, 0.75, 0.5];
        let (direct, direct_stats) = npu.execute(&program, model.layout(), &mut array, &input);
        let (via_uc, uc_stats) =
            run_inference_via_uc(&npu, &program, model.layout(), &mut array, &input);
        // Bit-exact: both paths quantize inputs to the same Q1.14 words
        // and run the same datapath.
        assert_eq!(direct, via_uc);
        assert_eq!(direct_stats, uc_stats);
    }

    #[test]
    fn inference_program_assembles_for_paper_topologies() {
        for (fi, fo) in [(100, 10), (400, 1), (2, 2), (6, 1)] {
            let prog = assemble(&inference_program(fi, fo)).unwrap();
            assert!(prog.len() > 10);
        }
    }

    #[test]
    fn staged_input_roundtrips_through_the_bus() {
        let (npu, program, model, mut array) = setup();
        let mut bus = NpuPeripheral::new(&npu, &program, model.layout(), &mut array);
        bus.write(npu_map::NPU_IN + 1, 0x1234);
        assert_eq!(bus.read(npu_map::NPU_IN + 1), 0x1234);
        assert_eq!(bus.read(npu_map::NPU_STATUS), 0);
        bus.write(npu_map::NPU_CTRL, 1);
        assert_eq!(bus.read(npu_map::NPU_STATUS), 1);
        assert!(bus.last_stats.cycles > 0);
    }
}
