//! Fault-composed inference must be **bit-identical** to per-MAC
//! injection.
//!
//! The NPU's default execution path composes the array's post-disturb
//! contents into a dense `FaultedWeights` artifact and runs the blocked
//! integer kernel; [`Snnac::execute_reference`] keeps the original
//! locate-fetch-decode-per-MAC loop as the oracle. This suite drives both
//! over the four paper topologies, several chip seeds and the full
//! voltage range, asserting exact equality of outputs, cycle statistics
//! and the physical array state left behind.

use matic_core::{train_naive, upload_weights, FaultedWeights, MatConfig, TrainedModel};
use matic_nn::{NetSpec, Sample, SgdConfig};
use matic_snnac::microcode::Program;
use matic_snnac::{Chip, ChipConfig, Snnac};

/// The four Table I topologies.
fn paper_topologies() -> Vec<(&'static str, NetSpec)> {
    vec![
        ("mnist", NetSpec::classifier(&[100, 32, 10])),
        ("facedet", NetSpec::classifier(&[400, 8, 1])),
        ("inversek2j", NetSpec::regressor(&[2, 16, 2])),
        ("bscholes", NetSpec::regressor(&[6, 16, 1])),
    ]
}

/// A quickly trained model plus a few probe inputs for a topology.
fn model_and_probes(spec: &NetSpec, seed: u64) -> (TrainedModel, Vec<Vec<f64>>) {
    let fan_in = spec.layers[0];
    let fan_out = *spec.layers.last().unwrap();
    let data: Vec<Sample> = (0..24)
        .map(|i| {
            let input: Vec<f64> = (0..fan_in)
                .map(|c| (((i * 13 + c * 7 + seed as usize) % 97) as f64 / 97.0) - 0.3)
                .collect();
            let target = vec![0.5; fan_out];
            Sample::new(input, target)
        })
        .collect();
    let cfg = MatConfig {
        sgd: SgdConfig {
            epochs: 2,
            ..SgdConfig::default()
        },
        ..MatConfig::paper()
    };
    let model = train_naive(spec, &data, &cfg, 8, 576);
    let probes = data.iter().take(6).map(|s| s.input.clone()).collect();
    (model, probes)
}

/// Uploads at a safe voltage, overscales, and runs every probe through
/// both paths on twin dice (same synthesis seed = identical silicon),
/// asserting exact equality throughout.
fn assert_parity(spec: &NetSpec, name: &str, chip_seed: u64, voltage: f64) {
    let (model, probes) = model_and_probes(spec, chip_seed);
    let npu = Snnac::snnac(model.format());
    let program = Program::compile(spec, npu.pe_count());

    let mut reference_chip = Chip::synthesize(ChipConfig::snnac(), chip_seed);
    let mut composed_chip = Chip::synthesize(ChipConfig::snnac(), chip_seed);
    for chip in [&mut reference_chip, &mut composed_chip] {
        chip.set_sram_voltage(0.9);
        upload_weights(&model, chip.array_mut());
        chip.set_sram_voltage(voltage);
    }

    // Compose once, evaluate many — the sweep engine's usage pattern.
    let weights =
        FaultedWeights::from_array(model.layout(), model.format(), composed_chip.array_mut());
    for (p, input) in probes.iter().enumerate() {
        let (ref_out, ref_stats) =
            npu.execute_reference(&program, model.layout(), reference_chip.array_mut(), input);
        let (fast_out, fast_stats) = npu.execute_composed(&program, &weights, input);
        assert_eq!(
            ref_out, fast_out,
            "{name} seed {chip_seed} @ {voltage} V probe {p}: outputs diverge"
        );
        assert_eq!(
            ref_stats, fast_stats,
            "{name} seed {chip_seed} @ {voltage} V probe {p}: stats diverge"
        );
    }

    // Both paths must leave identical post-disturb silicon behind.
    for (_, loc) in model.layout().entries() {
        assert_eq!(
            reference_chip.array().bank(loc.bank).peek(loc.word),
            composed_chip.array().bank(loc.bank).peek(loc.word),
            "{name} seed {chip_seed} @ {voltage} V: array state diverges at {loc:?}"
        );
    }
}

#[test]
fn composed_matches_per_mac_across_benchmarks_seeds_and_voltages() {
    for (name, spec) in paper_topologies() {
        for chip_seed in [1u64, 77] {
            // Nominal (clean), moderate overscale, and the deep 0.46 V
            // point where nearly half the cells sit past their Vmin.
            for voltage in [0.9, 0.57, 0.50, 0.46] {
                assert_parity(&spec, name, chip_seed, voltage);
            }
        }
    }
}

#[test]
fn default_execute_is_the_composed_path() {
    // `execute` composes internally; one die driven by `execute`, a twin
    // driven by the reference, must agree exactly per inference.
    let (name, spec) = &paper_topologies()[0];
    let (model, probes) = model_and_probes(spec, 5);
    let npu = Snnac::snnac(model.format());
    let program = Program::compile(spec, npu.pe_count());
    let mut a = Chip::synthesize(ChipConfig::snnac(), 5);
    let mut b = Chip::synthesize(ChipConfig::snnac(), 5);
    for chip in [&mut a, &mut b] {
        chip.set_sram_voltage(0.9);
        upload_weights(&model, chip.array_mut());
        chip.set_sram_voltage(0.48);
    }
    for input in &probes {
        let (ref_out, ref_stats) =
            npu.execute_reference(&program, model.layout(), a.array_mut(), input);
        let (out, stats) = npu.execute(&program, model.layout(), b.array_mut(), input);
        assert_eq!(ref_out, out, "{name}: execute diverged from reference");
        assert_eq!(ref_stats, stats);
    }
}
