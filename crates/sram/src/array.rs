//! A multi-bank weight-memory array (one bank per PE).

use crate::bank::SramBank;
use crate::config::ArrayConfig;

/// The voltage-scalable weight-memory complex of an accelerator: several
/// independently addressable banks sharing one supply rail (SNNAC places
/// all weight SRAMs on a common scalable rail, §IV).
///
/// # Example
///
/// ```
/// use matic_sram::{ArrayConfig, SramArray};
/// let mut array = SramArray::synthesize(&ArrayConfig::snnac(), 7);
/// array.write(3, 0, 0x00FF);
/// assert_eq!(array.read(3, 0), 0x00FF);
/// array.set_operating_point(0.46, 25.0); // overscale: reads may now flip
/// ```
#[derive(Debug, Clone)]
pub struct SramArray {
    banks: Vec<SramBank>,
    voltage: f64,
    temp_c: f64,
}

impl SramArray {
    /// Synthesizes `cfg.banks` banks with per-bank derived seeds.
    pub fn synthesize(cfg: &ArrayConfig, seed: u64) -> Self {
        let banks = (0..cfg.banks)
            .map(|i| {
                SramBank::synthesize(
                    &cfg.bank,
                    seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1)),
                )
            })
            .collect();
        SramArray {
            banks,
            voltage: 0.9,
            temp_c: 25.0,
        }
    }

    /// Number of banks.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Immutable bank access.
    pub fn bank(&self, i: usize) -> &SramBank {
        &self.banks[i]
    }

    /// Mutable bank access (profiling needs write/read control).
    pub fn bank_mut(&mut self, i: usize) -> &mut SramBank {
        &mut self.banks[i]
    }

    /// Mutable access to all banks (array-wide profiling).
    pub fn banks_mut(&mut self) -> &mut [SramBank] {
        &mut self.banks
    }

    /// Sets the shared supply rail and die temperature for every bank.
    pub fn set_operating_point(&mut self, voltage: f64, temp_c: f64) {
        self.voltage = voltage;
        self.temp_c = temp_c;
        for bank in &mut self.banks {
            bank.set_operating_point(voltage, temp_c);
        }
    }

    /// Current shared supply voltage.
    pub fn voltage(&self) -> f64 {
        self.voltage
    }

    /// Current die temperature, °C.
    pub fn temperature(&self) -> f64 {
        self.temp_c
    }

    /// Writes a word into a bank.
    pub fn write(&mut self, bank: usize, addr: usize, word: u32) {
        self.banks[bank].write(addr, word);
    }

    /// Reads a word from a bank at the current operating point (may
    /// persistently disturb marginal cells; see [`SramBank::read`]).
    pub fn read(&mut self, bank: usize, addr: usize) -> u32 {
        self.banks[bank].read(addr)
    }

    /// Oracle: array-wide fail fraction at an operating point.
    pub fn fail_fraction_at(&self, voltage: f64, temp_c: f64) -> f64 {
        let sum: f64 = self
            .banks
            .iter()
            .map(|b| b.fail_fraction_at(voltage, temp_c))
            .sum();
        sum / self.banks.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banks_differ_but_are_reproducible() {
        let cfg = ArrayConfig {
            banks: 3,
            ..ArrayConfig::snnac()
        };
        let a = SramArray::synthesize(&cfg, 5);
        let b = SramArray::synthesize(&cfg, 5);
        // Same seed: identical silicon.
        for i in 0..3 {
            assert_eq!(
                a.bank(i).fail_fraction_at(0.47, 25.0),
                b.bank(i).fail_fraction_at(0.47, 25.0)
            );
        }
        // Distinct banks: different fault lotteries (overwhelmingly likely).
        assert_ne!(
            a.bank(0).fail_fraction_at(0.50, 25.0),
            a.bank(1).fail_fraction_at(0.50, 25.0)
        );
    }

    #[test]
    fn operating_point_propagates() {
        let mut array = SramArray::synthesize(&ArrayConfig::snnac(), 1);
        array.set_operating_point(0.5, 60.0);
        for i in 0..array.bank_count() {
            assert_eq!(array.bank(i).voltage(), 0.5);
            assert_eq!(array.bank(i).temperature(), 60.0);
        }
    }

    #[test]
    fn read_write_roundtrip_nominal() {
        let mut array = SramArray::synthesize(&ArrayConfig::snnac(), 2);
        for bank in 0..array.bank_count() {
            array.write(bank, 17, (bank as u32 * 37) & 0xFFFF);
        }
        for bank in 0..array.bank_count() {
            assert_eq!(array.read(bank, 17), (bank as u32 * 37) & 0xFFFF);
        }
    }
}
