//! A single voltage-scalable SRAM bank with read-disturb mechanics.

use crate::config::SramConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthesized SRAM bank: every bit-cell carries a preferred state and a
/// critical read voltage drawn from the configured [`VminDistribution`]
/// (process variation is frozen at synthesis, like silicon at tape-out).
///
/// Reads below a cell's `Vmin,read` flip the cell to its preferred state
/// *persistently* (paper §II-B): the flipped value remains on subsequent
/// reads until the word is rewritten. Writes always succeed — in the MATIC
/// deployment flow, weights are uploaded at a safe voltage before the
/// supply is overscaled, and write drivers overpower the cell regardless.
///
/// [`VminDistribution`]: crate::VminDistribution
///
/// # Example
///
/// ```
/// use matic_sram::{SramBank, SramConfig};
/// let mut bank = SramBank::synthesize(&SramConfig::snnac_bank(), 1);
/// bank.write(0, 0xBEEF);
/// assert_eq!(bank.read(0), 0xBEEF); // nominal voltage: no failures
/// bank.set_operating_point(0.45, 25.0);
/// let noisy = bank.read(0); // many marginal cells flip at 0.45 V
/// assert_eq!(bank.read(0), noisy); // ... but stay stable afterwards
/// ```
#[derive(Debug, Clone)]
pub struct SramBank {
    cfg: SramConfig,
    /// Current stored bit per cell, packed per word.
    stored: Vec<u32>,
    /// Preferred state per cell, packed per word.
    preferred: Vec<u32>,
    /// `Vmin,read` per cell at the reference temperature, row-major
    /// `word * word_bits + bit`.
    vmin: Vec<f32>,
    /// Cached mask per word of cells that fail at the current operating
    /// point (supply below the cell's effective Vmin).
    fail_mask: Vec<u32>,
    voltage: f64,
    temp_c: f64,
}

impl SramBank {
    /// Synthesizes a bank: draws every cell's preferred state (fair coin)
    /// and `Vmin,read` (inverse-CDF of the configured distribution).
    /// Deterministic in `seed`. Initial operating point is the nominal
    /// 0.9 V / 25 °C, where no cell fails.
    pub fn synthesize(cfg: &SramConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let words = cfg.words;
        let bits = cfg.word_bits as usize;
        let mut preferred = vec![0u32; words];
        let mut vmin = vec![0f32; words * bits];
        for w in 0..words {
            let mut pref_word = 0u32;
            for b in 0..bits {
                if rng.gen::<bool>() {
                    pref_word |= 1 << b;
                }
                vmin[w * bits + b] = cfg.dist.sample(&mut rng) as f32;
            }
            preferred[w] = pref_word;
        }
        let mut bank = SramBank {
            cfg: cfg.clone(),
            stored: vec![0u32; words],
            preferred,
            vmin,
            fail_mask: vec![0u32; words],
            voltage: 0.9,
            temp_c: 25.0,
        };
        bank.rebuild_fail_masks();
        bank
    }

    /// The bank's configuration.
    pub fn config(&self) -> &SramConfig {
        &self.cfg
    }

    /// Current supply voltage.
    pub fn voltage(&self) -> f64 {
        self.voltage
    }

    /// Current die temperature in °C.
    pub fn temperature(&self) -> f64 {
        self.temp_c
    }

    /// Changes the supply voltage and temperature. Re-derives which cells
    /// are past their read-stability limit. Stored values are untouched —
    /// state only changes when a *read* disturbs a marginal cell.
    pub fn set_operating_point(&mut self, voltage: f64, temp_c: f64) {
        self.voltage = voltage;
        self.temp_c = temp_c;
        self.rebuild_fail_masks();
    }

    fn rebuild_fail_masks(&mut self) {
        let bits = self.cfg.word_bits as usize;
        // A cell fails when supply < effective Vmin(T); equivalently when
        // the temperature-adjusted query voltage is below the reference
        // Vmin stored per cell.
        let dt = self.temp_c - self.cfg.dist.ref_temp_c();
        let v_query = (self.voltage - self.cfg.dist.temp_coeff() * dt) as f32;
        for w in 0..self.cfg.words {
            let mut mask = 0u32;
            for b in 0..bits {
                if v_query < self.vmin[w * bits + b] {
                    mask |= 1 << b;
                }
            }
            self.fail_mask[w] = mask;
        }
    }

    /// Writes a word (always succeeds; see type-level docs).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range or `word` has bits above the
    /// configured word width.
    pub fn write(&mut self, addr: usize, word: u32) {
        assert!(addr < self.cfg.words, "address {addr} out of range");
        assert_eq!(
            word & !self.cfg.word_mask(),
            0,
            "word 0x{word:X} wider than {} bits",
            self.cfg.word_bits
        );
        self.stored[addr] = word;
    }

    /// Reads a word at the current operating point. Marginal cells holding
    /// the complement of their preferred state flip **persistently**; the
    /// returned value reflects the post-disturb contents.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn read(&mut self, addr: usize) -> u32 {
        assert!(addr < self.cfg.words, "address {addr} out of range");
        let flips = (self.stored[addr] ^ self.preferred[addr]) & self.fail_mask[addr];
        self.stored[addr] ^= flips;
        self.stored[addr]
    }

    /// Non-destructive oracle peek at the stored bits (no read-disturb).
    /// Debug/test instrumentation only — silicon offers no such port.
    pub fn peek(&self, addr: usize) -> u32 {
        self.stored[addr]
    }

    /// Oracle: the fraction of cells that would fail at `(voltage, temp_c)`.
    /// Used to validate profiling against ground truth.
    pub fn fail_fraction_at(&self, voltage: f64, temp_c: f64) -> f64 {
        let dt = temp_c - self.cfg.dist.ref_temp_c();
        let v_query = (voltage - self.cfg.dist.temp_coeff() * dt) as f32;
        let bits = self.cfg.word_bits as usize;
        let failing = self.vmin.iter().filter(|&&vm| v_query < vm).count();
        failing as f64 / (self.cfg.words * bits) as f64
    }

    /// Oracle: a cell's reference-temperature `Vmin,read`.
    /// Exposed for model validation; the deployment flow never uses it
    /// (canary selection works from profiling data alone).
    pub fn cell_vmin(&self, addr: usize, bit: u8) -> f64 {
        self.vmin[addr * self.cfg.word_bits as usize + bit as usize] as f64
    }

    /// Oracle: a cell's preferred state.
    pub fn cell_preferred(&self, addr: usize, bit: u8) -> bool {
        (self.preferred[addr] >> bit) & 1 == 1
    }

    /// Number of addressable words.
    pub fn words(&self) -> usize {
        self.cfg.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::VminDistribution;

    fn small_cfg() -> SramConfig {
        SramConfig {
            words: 64,
            word_bits: 16,
            dist: VminDistribution::date2018(),
        }
    }

    #[test]
    fn nominal_voltage_reads_are_clean() {
        let mut bank = SramBank::synthesize(&small_cfg(), 3);
        for addr in 0..bank.words() {
            let w = (addr as u32).wrapping_mul(2654435761) & 0xFFFF;
            bank.write(addr, w);
        }
        for addr in 0..bank.words() {
            let w = (addr as u32).wrapping_mul(2654435761) & 0xFFFF;
            assert_eq!(bank.read(addr), w);
        }
    }

    #[test]
    fn synthesis_is_deterministic_in_seed() {
        let a = SramBank::synthesize(&small_cfg(), 11);
        let b = SramBank::synthesize(&small_cfg(), 11);
        let c = SramBank::synthesize(&small_cfg(), 12);
        assert_eq!(a.preferred, b.preferred);
        assert_eq!(a.vmin, b.vmin);
        assert_ne!(a.vmin, c.vmin);
    }

    #[test]
    fn low_voltage_reads_flip_to_preferred_and_stay() {
        let mut bank = SramBank::synthesize(&small_cfg(), 5);
        bank.set_operating_point(0.42, 25.0); // ~93 % fail rate
        for addr in 0..bank.words() {
            bank.write(addr, 0x0000);
        }
        for addr in 0..bank.words() {
            let first = bank.read(addr);
            // Every flipped bit must equal the preferred state.
            let flipped = first; // wrote zeros, so any 1 is a flip
            assert_eq!(flipped & !bank.preferred[addr], 0);
            // Stability: subsequent reads identical.
            assert_eq!(bank.read(addr), first);
            assert_eq!(bank.read(addr), first);
        }
    }

    #[test]
    fn cells_storing_preferred_state_never_flip() {
        let mut bank = SramBank::synthesize(&small_cfg(), 5);
        bank.set_operating_point(0.40, 25.0); // everything past Vmin
        for addr in 0..bank.words() {
            let pref = bank.preferred[addr];
            bank.write(addr, pref);
            assert_eq!(bank.read(addr), pref);
        }
    }

    #[test]
    fn rewrite_restores_correctness_at_safe_voltage() {
        let mut bank = SramBank::synthesize(&small_cfg(), 9);
        bank.set_operating_point(0.44, 25.0);
        bank.write(7, 0x1234);
        let _ = bank.read(7); // disturb
        bank.set_operating_point(0.9, 25.0);
        bank.write(7, 0x1234);
        assert_eq!(bank.read(7), 0x1234);
    }

    #[test]
    fn fail_fraction_tracks_distribution() {
        let cfg = SramConfig {
            words: 4096,
            word_bits: 16,
            dist: VminDistribution::date2018(),
        };
        let bank = SramBank::synthesize(&cfg, 21);
        for v in [0.50, 0.46] {
            let measured = bank.fail_fraction_at(v, 25.0);
            let expected = cfg.dist.fail_rate(v);
            assert!(
                (measured - expected).abs() < 0.01,
                "at {v}: {measured} vs {expected}"
            );
        }
    }

    #[test]
    fn colder_die_fails_more() {
        let bank = SramBank::synthesize(&small_cfg(), 2);
        let cold = bank.fail_fraction_at(0.48, -15.0);
        let hot = bank.fail_fraction_at(0.48, 90.0);
        assert!(cold >= hot);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn read_out_of_range_panics() {
        let mut bank = SramBank::synthesize(&small_cfg(), 0);
        let _ = bank.read(64);
    }

    #[test]
    #[should_panic(expected = "wider than")]
    fn write_oversized_word_panics() {
        let mut bank = SramBank::synthesize(&small_cfg(), 0);
        bank.write(0, 0x1_0000);
    }
}
