//! Geometry and statistics configuration for weight SRAMs.

use crate::dist::VminDistribution;
use serde::{Deserialize, Serialize};

/// Geometry + statistics of a single voltage-scalable SRAM bank.
///
/// SNNAC dedicates one bank to each of its eight processing elements; the
/// default geometry (576 words × 16 bits) makes the eight banks total the
/// chip's 9 KB of weight storage (Fig. 7b).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SramConfig {
    /// Number of addressable words.
    pub words: usize,
    /// Word length in bits (SNNAC datapath: 8–22).
    pub word_bits: u8,
    /// Per-cell `Vmin,read` statistics.
    pub dist: VminDistribution,
}

impl SramConfig {
    /// One SNNAC PE weight bank: 576 × 16 bit (one eighth of 9 KB).
    pub fn snnac_bank() -> Self {
        SramConfig {
            words: 576,
            word_bits: 16,
            dist: VminDistribution::date2018(),
        }
    }

    /// Total number of bit-cells in the bank.
    pub fn bits(&self) -> usize {
        self.words * self.word_bits as usize
    }

    /// Bit mask selecting the valid word bits.
    pub fn word_mask(&self) -> u32 {
        if self.word_bits == 32 {
            u32::MAX
        } else {
            (1u32 << self.word_bits) - 1
        }
    }
}

impl Default for SramConfig {
    fn default() -> Self {
        Self::snnac_bank()
    }
}

/// Geometry of a full weight-memory array (one bank per PE).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayConfig {
    /// Number of banks (SNNAC: 8, one per processing element).
    pub banks: usize,
    /// Per-bank configuration.
    pub bank: SramConfig,
}

impl ArrayConfig {
    /// The SNNAC weight-memory complex: 8 banks × 576 words × 16 bits = 9 KB.
    pub fn snnac() -> Self {
        ArrayConfig {
            banks: 8,
            bank: SramConfig::snnac_bank(),
        }
    }

    /// Total bit-cells across all banks.
    pub fn bits(&self) -> usize {
        self.banks * self.bank.bits()
    }

    /// Total bytes of weight storage.
    pub fn bytes(&self) -> usize {
        self.bits() / 8
    }
}

impl Default for ArrayConfig {
    fn default() -> Self {
        Self::snnac()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snnac_array_is_nine_kilobytes() {
        let cfg = ArrayConfig::snnac();
        assert_eq!(cfg.bytes(), 9 * 1024);
        assert_eq!(cfg.banks, 8);
        assert_eq!(cfg.bank.word_bits, 16);
    }

    #[test]
    fn word_mask_matches_width() {
        let mut cfg = SramConfig::snnac_bank();
        assert_eq!(cfg.word_mask(), 0xFFFF);
        cfg.word_bits = 8;
        assert_eq!(cfg.word_mask(), 0xFF);
        cfg.word_bits = 22;
        assert_eq!(cfg.word_mask(), 0x3F_FFFF);
    }
}
