//! The per-cell `Vmin,read` distribution.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Empirical distribution of per-cell critical read voltages.
///
/// The complementary CDF of this distribution *is* the bit-error rate at a
/// given operating voltage: a cell whose `Vmin,read` exceeds the supply
/// fails (flips to its preferred state on a read). The paper's measured
/// failure-rate curve (Fig. 9a) is reproduced by log-linear interpolation
/// through calibrated `(voltage, fail-rate)` anchors.
///
/// Temperature enters through a linear coefficient on every cell's
/// `Vmin,read`. The test-chip operates below the temperature-inversion
/// point of the 65 nm process (§V-C), so *higher* temperature means
/// *stronger* transistors and a *lower* required voltage — the coefficient
/// is negative.
///
/// # Example
///
/// ```
/// use matic_sram::VminDistribution;
/// let d = VminDistribution::date2018();
/// // First failures appear at 0.53 V ...
/// assert!((d.fail_rate(0.53) - 1e-5).abs() < 1e-6);
/// // ... and the energy-optimal 0.50 V point shows the paper's 28 %.
/// assert!((d.fail_rate(0.50) - 0.28).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VminDistribution {
    /// `(voltage, fail_rate)` anchors, voltage strictly decreasing,
    /// fail rate strictly increasing, last anchor has fail rate 1.0.
    anchors: Vec<(f64, f64)>,
    /// dV/dT of every cell's `Vmin,read` in volts per °C (negative below
    /// the temperature-inversion point).
    temp_coeff: f64,
    /// Reference temperature for the anchors, °C.
    ref_temp_c: f64,
}

impl VminDistribution {
    /// The distribution calibrated to the DATE 2018 test chip: first
    /// failures at 0.53 V, 28 % at 0.50 V, all reads failing by 0.40 V
    /// (Fig. 9a and §V-B), −0.24 mV/°C temperature coefficient sized so a
    /// −15…90 °C chamber sweep moves the canary-tracked voltage by ~25 mV
    /// (Fig. 12).
    pub fn date2018() -> Self {
        // Hard anchors from the paper: 1e-5 @ 0.53 V (first failures),
        // 0.28 @ 0.50 V (energy-optimal point), 1.0 @ 0.40 V (all reads
        // fail). Between the last two the interpolation is log-linear —
        // a straight segment on Fig. 9a's log axis — giving ≈0.36 @ 0.48,
        // ≈0.47 @ 0.46 and ≈0.60 @ 0.44.
        VminDistribution {
            anchors: vec![
                (0.540, 1e-9),
                (0.530, 1e-5),
                (0.515, 1.5e-3),
                (0.500, 0.28),
                (0.400, 1.0),
            ],
            temp_coeff: -0.24e-3,
            ref_temp_c: 25.0,
        }
    }

    /// Builds a distribution from custom anchors.
    ///
    /// # Panics
    ///
    /// Panics unless voltages are strictly decreasing, fail rates strictly
    /// increasing and positive, and the final fail rate is 1.0.
    pub fn from_anchors(anchors: Vec<(f64, f64)>, temp_coeff: f64, ref_temp_c: f64) -> Self {
        assert!(anchors.len() >= 2, "need at least two anchors");
        for pair in anchors.windows(2) {
            assert!(
                pair[0].0 > pair[1].0,
                "anchor voltages must strictly decrease"
            );
            assert!(
                pair[0].1 < pair[1].1,
                "anchor fail rates must strictly increase"
            );
        }
        assert!(anchors[0].1 > 0.0, "fail rates must be positive");
        assert!(
            (anchors.last().unwrap().1 - 1.0).abs() < f64::EPSILON,
            "final anchor must have fail rate 1.0"
        );
        VminDistribution {
            anchors,
            temp_coeff,
            ref_temp_c,
        }
    }

    /// Expected bit-error rate at `voltage` and the reference temperature:
    /// log-linear interpolation through the anchors, clamped to [0, 1].
    pub fn fail_rate(&self, voltage: f64) -> f64 {
        let first = self.anchors[0];
        let last = *self.anchors.last().unwrap();
        if voltage >= first.0 {
            return 0.0;
        }
        if voltage <= last.0 {
            return 1.0;
        }
        for pair in self.anchors.windows(2) {
            let (v_hi, r_lo) = pair[0];
            let (v_lo, r_hi) = pair[1];
            if voltage <= v_hi && voltage >= v_lo {
                let t = (v_hi - voltage) / (v_hi - v_lo);
                let log_r = r_lo.ln() + t * (r_hi.ln() - r_lo.ln());
                return log_r.exp().clamp(0.0, 1.0);
            }
        }
        1.0
    }

    /// Expected bit-error rate at `voltage` and temperature `temp_c`:
    /// shifting every cell's Vmin by `temp_coeff·ΔT` is equivalent to
    /// shifting the query voltage the opposite way.
    pub fn fail_rate_at(&self, voltage: f64, temp_c: f64) -> f64 {
        self.fail_rate(voltage - self.temp_coeff * (temp_c - self.ref_temp_c))
    }

    /// Draws one cell's `Vmin,read` (at the reference temperature) by
    /// inverse-CDF sampling of the anchor curve.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        self.inverse_fail_rate(u)
    }

    /// The voltage at which the expected fail rate equals `rate`
    /// (the quantile function of the per-cell Vmin distribution).
    ///
    /// Rates below the first anchor map to just above its voltage (such
    /// cells effectively never fail in the modelled range); rates ≥ 1 map
    /// to the final anchor voltage.
    pub fn inverse_fail_rate(&self, rate: f64) -> f64 {
        let first = self.anchors[0];
        let last = *self.anchors.last().unwrap();
        if rate <= first.1 {
            // Harmless sentinel: cell never fails within the sweep range.
            return first.0 - 0.20;
        }
        if rate >= last.1 {
            return last.0;
        }
        for pair in self.anchors.windows(2) {
            let (v_hi, r_lo) = pair[0];
            let (v_lo, r_hi) = pair[1];
            if rate >= r_lo && rate <= r_hi {
                let t = (rate.ln() - r_lo.ln()) / (r_hi.ln() - r_lo.ln());
                return v_hi - t * (v_hi - v_lo);
            }
        }
        last.0
    }

    /// A cell's effective `Vmin,read` at temperature `temp_c`, given its
    /// reference-temperature value.
    pub fn vmin_at(&self, vmin_ref: f64, temp_c: f64) -> f64 {
        vmin_ref + self.temp_coeff * (temp_c - self.ref_temp_c)
    }

    /// The temperature coefficient in V/°C.
    pub fn temp_coeff(&self) -> f64 {
        self.temp_coeff
    }

    /// The reference temperature in °C.
    pub fn ref_temp_c(&self) -> f64 {
        self.ref_temp_c
    }

    /// Voltage of the first (highest-voltage) anchor — above this, the
    /// model predicts zero failures.
    pub fn safe_voltage(&self) -> f64 {
        self.anchors[0].0
    }
}

impl Default for VminDistribution {
    fn default() -> Self {
        Self::date2018()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_anchor_points_reproduced() {
        let d = VminDistribution::date2018();
        assert_eq!(d.fail_rate(0.55), 0.0);
        assert!((d.fail_rate(0.53) - 1e-5).abs() < 1e-7);
        assert!((d.fail_rate(0.50) - 0.28).abs() < 1e-9);
        assert_eq!(d.fail_rate(0.40), 1.0);
        assert_eq!(d.fail_rate(0.35), 1.0);
    }

    #[test]
    fn fail_rate_monotone_decreasing_in_voltage() {
        let d = VminDistribution::date2018();
        let mut prev = 1.0;
        let mut v = 0.38;
        while v < 0.56 {
            let r = d.fail_rate(v);
            assert!(r <= prev + 1e-12, "non-monotone at {v}");
            prev = r;
            v += 0.001;
        }
    }

    #[test]
    fn inverse_is_right_inverse_of_fail_rate() {
        let d = VminDistribution::date2018();
        for rate in [1e-5, 1e-4, 1e-2, 0.28, 0.5, 0.75, 0.99] {
            let v = d.inverse_fail_rate(rate);
            assert!(
                (d.fail_rate(v) - rate).abs() / rate < 1e-6,
                "rate {rate} -> v {v} -> {}",
                d.fail_rate(v)
            );
        }
    }

    #[test]
    fn sampled_population_matches_curve() {
        let d = VminDistribution::date2018();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        for v in [0.52, 0.50, 0.46, 0.42] {
            let measured = samples.iter().filter(|&&x| x > v).count() as f64 / n as f64;
            let expected = d.fail_rate(v);
            assert!(
                (measured - expected).abs() < 0.01,
                "at {v}: measured {measured} vs expected {expected}"
            );
        }
    }

    #[test]
    fn temperature_inversion_lowers_vmin_when_hot() {
        let d = VminDistribution::date2018();
        // Hotter -> cells get stronger -> fewer failures at the same voltage.
        assert!(d.fail_rate_at(0.50, 90.0) < d.fail_rate_at(0.50, 25.0));
        assert!(d.fail_rate_at(0.50, -15.0) > d.fail_rate_at(0.50, 25.0));
        // And the per-cell view agrees.
        assert!(d.vmin_at(0.50, 90.0) < 0.50);
        assert!(d.vmin_at(0.50, -15.0) > 0.50);
    }

    #[test]
    #[should_panic(expected = "strictly decrease")]
    fn from_anchors_rejects_unsorted() {
        VminDistribution::from_anchors(vec![(0.5, 0.1), (0.5, 1.0)], 0.0, 25.0);
    }

    #[test]
    #[should_panic(expected = "fail rate 1.0")]
    fn from_anchors_requires_terminal_one() {
        VminDistribution::from_anchors(vec![(0.5, 0.1), (0.4, 0.9)], 0.0, 25.0);
    }

    #[test]
    fn safe_voltage_has_zero_rate() {
        let d = VminDistribution::date2018();
        assert_eq!(d.fail_rate(d.safe_voltage()), 0.0);
    }
}
