//! Fault maps: the per-word OR/AND injection masks of memory-adaptive
//! training.
//!
//! Profiling (paper §III-A) collects "the word address, bit index, and
//! error polarity of each bit-cell failure". Because read upsets flip a
//! cell *to* its preferred state:
//!
//! * a failing cell that prefers `1` behaves as stuck-at-1 → **OR mask**;
//! * a failing cell that prefers `0` behaves as stuck-at-0 → **AND mask**.
//!
//! Applying a fault map to a stored word is then
//! `(word & and_mask) | or_mask` — precisely the "injection masking" step
//! of Fig. 4.
//!
//! Beyond the paper's stuck-at physics, a map can also carry **XOR
//! masks**: bits that *invert* on every read rather than pinning to a
//! preferred state. These model the i.i.d. random bit flips of
//! bit-error-robustness studies (Stutz et al.) and compose after the
//! stuck-at masks: `((word & and) | or) ^ xor`.

use serde::{Deserialize, Serialize};

/// A single profiled bit-cell failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultRecord {
    /// Bank index within the array.
    pub bank: usize,
    /// Word address within the bank.
    pub word: usize,
    /// Bit index within the word.
    pub bit: u8,
    /// Polarity: `true` = stuck-at-1 (cell prefers 1), `false` = stuck-at-0.
    pub stuck_at_one: bool,
}

/// Injection masks for one SRAM bank.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankFaultMap {
    word_bits: u8,
    /// Per-word OR mask (bits stuck at 1).
    or_masks: Vec<u32>,
    /// Per-word AND mask (bit *cleared* where stuck at 0).
    and_masks: Vec<u32>,
    /// Per-word XOR mask (bits inverted on read: random flips).
    xor_masks: Vec<u32>,
}

impl BankFaultMap {
    /// An all-clean map for `words` words of `word_bits` bits.
    pub fn clean(words: usize, word_bits: u8) -> Self {
        let full = word_mask(word_bits);
        BankFaultMap {
            word_bits,
            or_masks: vec![0; words],
            and_masks: vec![full; words],
            xor_masks: vec![0; words],
        }
    }

    /// Marks a bit as faulty with the given polarity.
    ///
    /// # Panics
    ///
    /// Panics if `word` or `bit` is out of range.
    pub fn set_fault(&mut self, word: usize, bit: u8, stuck_at_one: bool) {
        assert!(bit < self.word_bits, "bit {bit} out of range");
        let m = 1u32 << bit;
        if stuck_at_one {
            self.or_masks[word] |= m;
            self.and_masks[word] |= m; // stuck-at-1 wins over a stale SA0
        } else {
            self.and_masks[word] &= !m;
            self.or_masks[word] &= !m;
        }
    }

    /// Marks a bit as a random flip: it inverts on every read instead of
    /// pinning to a preferred state. Clears any stuck-at record on the
    /// same bit (a cell is either stuck or flipping, not both).
    ///
    /// # Panics
    ///
    /// Panics if `word` or `bit` is out of range.
    pub fn set_flip(&mut self, word: usize, bit: u8) {
        assert!(bit < self.word_bits, "bit {bit} out of range");
        let m = 1u32 << bit;
        self.or_masks[word] &= !m;
        self.and_masks[word] |= m;
        self.xor_masks[word] |= m;
    }

    /// Applies the injection masks to a stored word:
    /// `((word & and) | or) ^ xor` (Fig. 4, extended with flips).
    pub fn apply(&self, word_addr: usize, word: u32) -> u32 {
        ((word & self.and_masks[word_addr]) | self.or_masks[word_addr]) ^ self.xor_masks[word_addr]
    }

    /// OR mask for a word (bits stuck at 1).
    pub fn or_mask(&self, word_addr: usize) -> u32 {
        self.or_masks[word_addr]
    }

    /// AND mask for a word (zero where stuck at 0).
    pub fn and_mask(&self, word_addr: usize) -> u32 {
        self.and_masks[word_addr]
    }

    /// XOR mask for a word (bits inverted on read).
    pub fn xor_mask(&self, word_addr: usize) -> u32 {
        self.xor_masks[word_addr]
    }

    /// All per-word OR masks, indexed by word address. Together with
    /// [`BankFaultMap::and_masks`] this is the bulk form consumed when the
    /// whole bank's masks are composed into weight storage up front
    /// (`matic-core`'s composed quantizer) instead of being applied
    /// word-by-word inside a training or inference loop.
    pub fn or_masks(&self) -> &[u32] {
        &self.or_masks
    }

    /// All per-word AND masks, indexed by word address; see
    /// [`BankFaultMap::or_masks`].
    pub fn and_masks(&self) -> &[u32] {
        &self.and_masks
    }

    /// All per-word XOR masks, indexed by word address; see
    /// [`BankFaultMap::or_masks`].
    pub fn xor_masks(&self) -> &[u32] {
        &self.xor_masks
    }

    /// Applies the injection masks to a buffer of stored words in place
    /// (`words[i] = ((words[i] & and[i]) | or[i]) ^ xor[i]`): the bulk
    /// counterpart of [`BankFaultMap::apply`] for composing a whole bank
    /// at once.
    ///
    /// # Panics
    ///
    /// Panics if `words` is longer than the bank.
    pub fn apply_slice(&self, words: &mut [u32]) {
        assert!(words.len() <= self.or_masks.len(), "buffer exceeds bank");
        for (((w, &and), &or), &xor) in words
            .iter_mut()
            .zip(&self.and_masks)
            .zip(&self.or_masks)
            .zip(&self.xor_masks)
        {
            *w = ((*w & and) | or) ^ xor;
        }
    }

    /// Mask of faulty bits in a word (stuck either polarity, or flipping).
    pub fn fault_bits(&self, word_addr: usize) -> u32 {
        self.or_masks[word_addr]
            | (!self.and_masks[word_addr] & word_mask(self.word_bits))
            | self.xor_masks[word_addr]
    }

    /// Whether a particular bit is recorded faulty.
    pub fn is_faulty(&self, word_addr: usize, bit: u8) -> bool {
        (self.fault_bits(word_addr) >> bit) & 1 == 1
    }

    /// Number of words covered.
    pub fn words(&self) -> usize {
        self.or_masks.len()
    }

    /// Word width in bits.
    pub fn word_bits(&self) -> u8 {
        self.word_bits
    }

    /// Total faulty bits in the bank.
    pub fn fault_count(&self) -> usize {
        (0..self.words())
            .map(|w| self.fault_bits(w).count_ones() as usize)
            .sum()
    }

    /// Bit-error rate over the bank.
    pub fn ber(&self) -> f64 {
        self.fault_count() as f64 / (self.words() * self.word_bits as usize) as f64
    }

    /// Iterates over the recorded **stuck-at** faults (the profiled
    /// failures the canary machinery consumes). Random-flip bits are not
    /// yielded — they have no preferred state to report; count them via
    /// [`BankFaultMap::fault_bits`] / [`BankFaultMap::fault_count`].
    pub fn iter(&self) -> impl Iterator<Item = (usize, u8, bool)> + '_ {
        (0..self.words()).flat_map(move |w| {
            (0..self.word_bits).filter_map(move |b| {
                let m = 1u32 << b;
                if self.or_masks[w] & m != 0 {
                    Some((w, b, true))
                } else if self.and_masks[w] & m == 0 {
                    Some((w, b, false))
                } else {
                    None
                }
            })
        })
    }

    /// True when `other` contains every fault of `self` with the same
    /// behaviour (the voltage-monotonicity relation: maps profiled at a
    /// higher voltage are subsets of maps profiled lower). Stuck bits
    /// must match polarity; flip bits must flip in `other` too.
    pub fn is_subset_of(&self, other: &BankFaultMap) -> bool {
        if self.words() != other.words() {
            return false;
        }
        (0..self.words()).all(|w| {
            (self.or_masks[w] & !other.or_masks[w]) == 0
                && (!self.and_masks[w] & other.and_masks[w] & word_mask(self.word_bits)) == 0
                && (self.xor_masks[w] & !other.xor_masks[w]) == 0
        })
    }
}

/// Fault maps for a full weight-memory array, plus the operating point the
/// profile was taken at.
///
/// # Examples
///
/// A fault map is the per-word OR/AND injection masking of Fig. 4: a cell
/// stuck at 1 forces its bit high, a cell stuck at 0 forces it low, and
/// clean words pass through untouched.
///
/// ```
/// use matic_sram::FaultMap;
///
/// let mut map = FaultMap::clean(0.50, 2, 64, 16);
/// map.bank_mut(0).set_fault(3, 15, true);  // sign bit stuck at 1
/// map.bank_mut(1).set_fault(9, 0, false);  // LSB stuck at 0
///
/// assert_eq!(map.apply(0, 3, 0x0001), 0x8001);
/// assert_eq!(map.apply(1, 9, 0xFFFF), 0xFFFE);
/// assert_eq!(map.apply(0, 0, 0x1234), 0x1234); // clean word
/// assert_eq!(map.fault_count(), 2);
/// assert!((map.ber() - 2.0 / (2.0 * 64.0 * 16.0)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultMap {
    /// Profiled supply voltage.
    pub voltage: f64,
    /// Profiled die temperature, °C.
    pub temp_c: f64,
    banks: Vec<BankFaultMap>,
}

impl FaultMap {
    /// Builds a map from per-bank maps and the profiled operating point.
    pub fn new(voltage: f64, temp_c: f64, banks: Vec<BankFaultMap>) -> Self {
        FaultMap {
            voltage,
            temp_c,
            banks,
        }
    }

    /// An all-clean map with the given geometry.
    pub fn clean(voltage: f64, banks: usize, words: usize, word_bits: u8) -> Self {
        FaultMap {
            voltage,
            temp_c: 25.0,
            banks: (0..banks)
                .map(|_| BankFaultMap::clean(words, word_bits))
                .collect(),
        }
    }

    /// Per-bank maps.
    pub fn banks(&self) -> &[BankFaultMap] {
        &self.banks
    }

    /// Mutable access to a bank map (used by synthetic injectors).
    pub fn bank_mut(&mut self, bank: usize) -> &mut BankFaultMap {
        &mut self.banks[bank]
    }

    /// Applies the masks of `bank` to a stored word.
    pub fn apply(&self, bank: usize, word_addr: usize, word: u32) -> u32 {
        self.banks[bank].apply(word_addr, word)
    }

    /// Total faults across all banks.
    pub fn fault_count(&self) -> usize {
        self.banks.iter().map(BankFaultMap::fault_count).sum()
    }

    /// Array-wide bit-error rate.
    pub fn ber(&self) -> f64 {
        let bits: usize = self
            .banks
            .iter()
            .map(|b| b.words() * b.word_bits() as usize)
            .sum();
        if bits == 0 {
            0.0
        } else {
            self.fault_count() as f64 / bits as f64
        }
    }

    /// All fault records across the array.
    pub fn records(&self) -> Vec<FaultRecord> {
        self.banks
            .iter()
            .enumerate()
            .flat_map(|(bank, map)| {
                map.iter()
                    .map(move |(word, bit, stuck_at_one)| FaultRecord {
                        bank,
                        word,
                        bit,
                        stuck_at_one,
                    })
            })
            .collect()
    }

    /// Stable 128-bit content fingerprint of the map: the profiled
    /// operating point plus every bank's OR/AND/XOR masks. Two maps share
    /// a fingerprint exactly when they would inject identical faults,
    /// which is what lets the sweep cache address results by fault
    /// content rather than by how the map was produced.
    pub fn fingerprint(&self) -> u128 {
        let mut f = crate::fingerprint::Fingerprint::new();
        f.write_str("matic.fault-map/v2");
        f.write_u64(self.voltage.to_bits());
        f.write_u64(self.temp_c.to_bits());
        f.write_u64(self.banks.len() as u64);
        for bank in &self.banks {
            f.write_u64(bank.word_bits() as u64);
            f.write_u64(bank.words() as u64);
            for w in 0..bank.words() {
                f.write_u64(bank.or_mask(w) as u64);
                f.write_u64(bank.and_mask(w) as u64);
                f.write_u64(bank.xor_mask(w) as u64);
            }
        }
        f.finish()
    }

    /// Voltage-monotonicity relation over whole arrays.
    pub fn is_subset_of(&self, other: &FaultMap) -> bool {
        self.banks.len() == other.banks.len()
            && self
                .banks
                .iter()
                .zip(&other.banks)
                .all(|(a, b)| a.is_subset_of(b))
    }
}

fn word_mask(word_bits: u8) -> u32 {
    if word_bits == 32 {
        u32::MAX
    } else {
        (1u32 << word_bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_map_is_identity() {
        let map = BankFaultMap::clean(8, 16);
        for w in 0..8 {
            assert_eq!(map.apply(w, 0xABCD), 0xABCD);
        }
        assert_eq!(map.fault_count(), 0);
        assert_eq!(map.ber(), 0.0);
    }

    #[test]
    fn stuck_at_one_sets_bit() {
        let mut map = BankFaultMap::clean(4, 16);
        map.set_fault(2, 5, true);
        assert_eq!(map.apply(2, 0x0000), 1 << 5);
        assert_eq!(map.apply(2, 0xFFFF), 0xFFFF);
        assert_eq!(map.apply(1, 0x0000), 0x0000); // other words untouched
        assert!(map.is_faulty(2, 5));
        assert!(!map.is_faulty(2, 4));
    }

    #[test]
    fn stuck_at_zero_clears_bit() {
        let mut map = BankFaultMap::clean(4, 16);
        map.set_fault(0, 15, false);
        assert_eq!(map.apply(0, 0xFFFF), 0x7FFF);
        assert_eq!(map.apply(0, 0x0000), 0x0000);
    }

    #[test]
    fn apply_is_idempotent() {
        let mut map = BankFaultMap::clean(2, 16);
        map.set_fault(0, 3, true);
        map.set_fault(0, 9, false);
        let once = map.apply(0, 0x5A5A);
        assert_eq!(map.apply(0, once), once);
    }

    #[test]
    fn polarity_update_is_last_writer_wins() {
        let mut map = BankFaultMap::clean(1, 16);
        map.set_fault(0, 4, false);
        map.set_fault(0, 4, true);
        assert_eq!(map.apply(0, 0x0000), 1 << 4);
        map.set_fault(0, 4, false);
        assert_eq!(map.apply(0, 0xFFFF) & (1 << 4), 0);
    }

    #[test]
    fn iter_reports_all_faults_with_polarity() {
        let mut map = BankFaultMap::clean(4, 8);
        map.set_fault(1, 0, true);
        map.set_fault(3, 7, false);
        let faults: Vec<_> = map.iter().collect();
        assert_eq!(faults, vec![(1, 0, true), (3, 7, false)]);
        assert_eq!(map.fault_count(), 2);
    }

    #[test]
    fn subset_relation() {
        let mut small = BankFaultMap::clean(4, 8);
        small.set_fault(0, 1, true);
        let mut big = small.clone();
        big.set_fault(2, 3, false);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(small.is_subset_of(&small));
    }

    #[test]
    fn subset_requires_matching_polarity() {
        let mut a = BankFaultMap::clean(1, 8);
        a.set_fault(0, 0, true);
        let mut b = BankFaultMap::clean(1, 8);
        b.set_fault(0, 0, false);
        assert!(!a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
    }

    #[test]
    fn apply_slice_matches_scalar_apply() {
        let mut map = BankFaultMap::clean(8, 16);
        map.set_fault(1, 2, true);
        map.set_fault(5, 11, false);
        let mut words: Vec<u32> = (0..8).map(|i| (i * 0x1357) & 0xFFFF).collect();
        let expect: Vec<u32> = words
            .iter()
            .enumerate()
            .map(|(w, &v)| map.apply(w, v))
            .collect();
        map.apply_slice(&mut words);
        assert_eq!(words, expect);
        assert_eq!(map.or_masks().len(), 8);
        assert_eq!(map.and_masks()[5] & (1 << 11), 0);
    }

    #[test]
    fn fingerprint_tracks_content() {
        let mut a = FaultMap::clean(0.5, 2, 4, 16);
        let clean = a.fingerprint();
        assert_eq!(clean, a.clone().fingerprint(), "stable across clones");
        a.bank_mut(0).set_fault(1, 2, true);
        let one_fault = a.fingerprint();
        assert_ne!(clean, one_fault, "a new fault must change the digest");
        a.bank_mut(0).set_fault(1, 2, false);
        assert_ne!(one_fault, a.fingerprint(), "polarity is content");
        let other_voltage = FaultMap::clean(0.6, 2, 4, 16);
        assert_ne!(
            clean,
            other_voltage.fingerprint(),
            "the profiled operating point is content"
        );
    }

    #[test]
    fn flip_inverts_bit_on_apply() {
        let mut map = BankFaultMap::clean(4, 16);
        map.set_flip(1, 3);
        assert_eq!(map.apply(1, 0x0000), 1 << 3);
        assert_eq!(map.apply(1, 0xFFFF), 0xFFFF ^ (1 << 3));
        assert_eq!(map.apply(0, 0x0000), 0x0000); // other words untouched
        assert_eq!(map.xor_mask(1), 1 << 3);
        // A flip counts as a faulty bit.
        assert_eq!(map.fault_count(), 1);
        // But iter() yields stuck-at faults only (canary machinery).
        assert_eq!(map.iter().count(), 0);
    }

    #[test]
    fn set_flip_overrides_prior_stuck_at() {
        let mut map = BankFaultMap::clean(1, 16);
        map.set_fault(0, 4, true);
        map.set_flip(0, 4);
        assert_eq!(map.apply(0, 0x0000), 1 << 4);
        assert_eq!(map.apply(0, 0xFFFF) & (1 << 4), 0);
    }

    #[test]
    fn flip_subset_relation() {
        let mut small = BankFaultMap::clean(2, 8);
        small.set_flip(0, 1);
        let mut big = small.clone();
        big.set_flip(1, 5);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        // A flip is not a subset of a stuck-at at the same bit.
        let mut stuck = BankFaultMap::clean(2, 8);
        stuck.set_fault(0, 1, true);
        assert!(!small.is_subset_of(&stuck));
    }

    #[test]
    fn apply_slice_matches_scalar_apply_with_flips() {
        let mut map = BankFaultMap::clean(8, 16);
        map.set_fault(1, 2, true);
        map.set_flip(5, 11);
        map.set_flip(1, 9);
        let mut words: Vec<u32> = (0..8).map(|i| (i * 0x1357) & 0xFFFF).collect();
        let expect: Vec<u32> = words
            .iter()
            .enumerate()
            .map(|(w, &v)| map.apply(w, v))
            .collect();
        map.apply_slice(&mut words);
        assert_eq!(words, expect);
        assert_eq!(map.xor_masks().len(), 8);
    }

    #[test]
    fn fingerprint_tracks_flips() {
        let mut a = FaultMap::clean(0.5, 2, 4, 16);
        let clean = a.fingerprint();
        a.bank_mut(0).set_flip(1, 2);
        let flipped = a.fingerprint();
        assert_ne!(clean, flipped, "a flip must change the digest");
        let mut stuck = FaultMap::clean(0.5, 2, 4, 16);
        stuck.bank_mut(0).set_fault(1, 2, true);
        assert_ne!(
            flipped,
            stuck.fingerprint(),
            "a flip and a stuck-at at the same bit are distinct content"
        );
    }

    #[test]
    fn array_map_aggregates() {
        let mut map = FaultMap::clean(0.5, 2, 4, 16);
        map.bank_mut(0).set_fault(0, 0, true);
        map.bank_mut(1).set_fault(3, 15, false);
        assert_eq!(map.fault_count(), 2);
        let recs = map.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].bank, 0);
        assert_eq!(recs[1].bank, 1);
        assert!(recs[1].word == 3 && recs[1].bit == 15 && !recs[1].stuck_at_one);
        assert!((map.ber() - 2.0 / 128.0).abs() < 1e-12);
    }
}
