//! Stable 128-bit content fingerprints.
//!
//! The sweep cache (`matic-harness::cache`) addresses grid-cell results
//! by the *content* of everything that determined them: fault maps, chip
//! configurations, trainer configurations. Those fingerprints must be
//! stable across processes, platforms and compiler versions — which rules
//! out [`std::hash::Hasher`] implementations (`DefaultHasher` is
//! explicitly unstable across releases). This module provides the one
//! hash everybody agrees on: FNV-1a widened to 128 bits, fed through the
//! serde shim's deterministic [`Value`] tree so any `Serialize` type can
//! be fingerprinted without bespoke byte layouts.
//!
//! Collision stance: 128 bits of FNV-1a over structured, length-tagged
//! input is far beyond what a result cache needs (a collision would
//! require ~2^64 distinct cells before a birthday pairing is likely);
//! the cache layer additionally namespaces keys by schema version.

use serde::{Serialize, Value};

/// FNV-1a offset basis, widened to 128 bits (per the official FNV spec).
const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a 128-bit prime (2^88 + 2^8 + 0x3b).
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// An incremental FNV-1a/128 hasher with a stable, documented algorithm.
#[derive(Debug, Clone)]
pub struct Fingerprint(u128);

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint(FNV128_OFFSET)
    }
}

impl Fingerprint {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u128;
            self.0 = self.0.wrapping_mul(FNV128_PRIME);
        }
        self
    }

    /// Absorbs a `u64` (big-endian, so the encoding is unambiguous).
    pub fn write_u64(&mut self, x: u64) -> &mut Self {
        self.write(&x.to_be_bytes())
    }

    /// Absorbs a `u128` (big-endian) — e.g. a nested fingerprint.
    pub fn write_u128(&mut self, x: u128) -> &mut Self {
        self.write(&x.to_be_bytes())
    }

    /// Absorbs a length-prefixed string (prefixing prevents
    /// concatenation ambiguity between adjacent fields).
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64).write(s.as_bytes())
    }

    /// The 128-bit digest.
    pub fn finish(&self) -> u128 {
        self.0
    }

    /// The digest as a fixed-width lowercase hex string (32 chars) —
    /// the form used for cache file names.
    pub fn to_hex(&self) -> String {
        format!("{:032x}", self.0)
    }
}

/// Fingerprints any `Serialize` type by walking its deterministic
/// [`Value`] tree. Every node is type-tagged and length-prefixed, so
/// distinct trees cannot collide by concatenation, and floats hash by
/// their IEEE-754 bit pattern (no formatting involved).
pub fn fingerprint_of<T: Serialize>(value: &T) -> u128 {
    let mut f = Fingerprint::new();
    absorb_value(&mut f, &value.to_value());
    f.finish()
}

fn absorb_value(f: &mut Fingerprint, v: &Value) {
    match v {
        Value::Null => {
            f.write(b"n");
        }
        Value::Bool(b) => {
            f.write(if *b { b"T" } else { b"F" });
        }
        Value::I64(n) => {
            f.write(b"i").write_u64(*n as u64);
        }
        Value::U64(n) => {
            f.write(b"u").write_u64(*n);
        }
        Value::F64(x) => {
            f.write(b"f").write_u64(x.to_bits());
        }
        Value::Str(s) => {
            f.write(b"s").write_str(s);
        }
        Value::Seq(items) => {
            f.write(b"[").write_u64(items.len() as u64);
            for item in items {
                absorb_value(f, item);
            }
        }
        Value::Map(entries) => {
            f.write(b"{").write_u64(entries.len() as u64);
            for (k, val) in entries {
                f.write_str(k);
                absorb_value(f, val);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vectors() {
        // FNV-1a/128 of the empty input is the offset basis.
        assert_eq!(Fingerprint::new().finish(), FNV128_OFFSET);
        // Distinct short inputs separate.
        let a = Fingerprint::new().write(b"a").finish();
        let b = Fingerprint::new().write(b"b").finish();
        assert_ne!(a, b);
    }

    #[test]
    fn length_prefix_prevents_concatenation_collisions() {
        let ab_c = Fingerprint::new().write_str("ab").write_str("c").finish();
        let a_bc = Fingerprint::new().write_str("a").write_str("bc").finish();
        assert_ne!(ab_c, a_bc);
    }

    #[test]
    fn value_fingerprints_are_type_tagged() {
        assert_ne!(
            fingerprint_of(&1u64),
            fingerprint_of(&1.0f64),
            "integer 1 and float 1.0 must not collide"
        );
        assert_ne!(fingerprint_of(&String::from("1")), fingerprint_of(&1u64));
    }

    #[test]
    fn fingerprints_are_reproducible() {
        let v = vec![0.5f64, 0.9];
        assert_eq!(fingerprint_of(&v), fingerprint_of(&v));
    }
}
