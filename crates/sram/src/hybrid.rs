//! Hybrid 8T-6T protection — the related-work alternative to MATIC.
//!
//! Srinivasan et al. (DATE 2016, cited as \[20\] in the paper) store weight
//! MSBs in 8T bit-cells, which remain read-stable at voltages where 6T
//! cells fail; the paper's critique is that "this approach has no
//! adaptation mechanism". This module models that design point so the
//! `ablation_hybrid_8t6t` bench can compare it quantitatively against
//! memory-adaptive training on the same fault maps.
//!
//! Model: the top `protected_bits` of every word are 8T (no read-disturb
//! failures in the overscaled range); the remaining LSBs stay 6T and keep
//! their profiled faults. 8T cells cost ~30 % more area than 6T, so the
//! weight-array area overhead is `0.3 · protected_bits / word_bits`.

use crate::fault_map::{BankFaultMap, FaultMap};

/// Area penalty of an 8T bit-cell relative to 6T (typical layout factor).
pub const AREA_RATIO_8T_OVER_6T: f64 = 1.3;

/// Returns the fault map as seen by a hybrid 8T-6T array: faults on the
/// top `protected_bits` of every word are removed (those cells are 8T and
/// do not suffer read-disturb at these voltages).
///
/// # Panics
///
/// Panics if `protected_bits` exceeds the word width.
pub fn protect_msbs(map: &FaultMap, protected_bits: u8) -> FaultMap {
    let word_bits = map.banks()[0].word_bits();
    assert!(
        protected_bits <= word_bits,
        "cannot protect {protected_bits} of {word_bits} bits"
    );
    let threshold = word_bits - protected_bits;
    let mut banks = Vec::with_capacity(map.banks().len());
    for bank in map.banks() {
        let mut out = BankFaultMap::clean(bank.words(), word_bits);
        for (word, bit, stuck_at_one) in bank.iter() {
            if bit < threshold {
                out.set_fault(word, bit, stuck_at_one);
            }
        }
        banks.push(out);
    }
    FaultMap::new(map.voltage, map.temp_c, banks)
}

/// Weight-array area overhead of protecting `protected_bits` per
/// `word_bits`-bit word with 8T cells, relative to an all-6T array.
pub fn area_overhead(protected_bits: u8, word_bits: u8) -> f64 {
    (AREA_RATIO_8T_OVER_6T - 1.0) * protected_bits as f64 / word_bits as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::bernoulli_fault_map;

    #[test]
    fn protection_clears_only_msb_faults() {
        let map = bernoulli_fault_map(2, 64, 16, 0.3, 7);
        let protected = protect_msbs(&map, 4);
        for r in protected.records() {
            assert!(r.bit < 12, "fault on protected bit {}", r.bit);
        }
        // Every surviving fault existed in the original map with the same
        // polarity.
        assert!(protected.is_subset_of(&map));
        // And every original LSB fault survives.
        let lsb_originals = map.records().iter().filter(|r| r.bit < 12).count();
        assert_eq!(protected.fault_count(), lsb_originals);
    }

    #[test]
    fn zero_protection_is_identity() {
        let map = bernoulli_fault_map(1, 32, 16, 0.2, 3);
        assert_eq!(protect_msbs(&map, 0), map);
    }

    #[test]
    fn full_protection_clears_everything() {
        let map = bernoulli_fault_map(1, 32, 16, 0.5, 3);
        assert_eq!(protect_msbs(&map, 16).fault_count(), 0);
    }

    #[test]
    fn area_overhead_scales_linearly() {
        assert_eq!(area_overhead(0, 16), 0.0);
        assert!((area_overhead(4, 16) - 0.075).abs() < 1e-12);
        assert!((area_overhead(16, 16) - 0.3).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cannot protect")]
    fn overwide_protection_rejected() {
        let map = bernoulli_fault_map(1, 8, 16, 0.1, 1);
        let _ = protect_msbs(&map, 17);
    }
}
