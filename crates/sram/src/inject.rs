//! Synthetic fault injection for feasibility studies.
//!
//! The paper's Fig. 5 evaluates memory-adaptive training *before silicon*
//! by statically flipping "a proportion of randomly selected weight bits …
//! where the proportion of faulty bits is determined from SPICE Monte Carlo
//! simulations". This module reproduces that methodology: Bernoulli fault
//! maps at a chosen bit-error proportion, with uniformly random stuck
//! polarity (preferred states are a fair coin).

use crate::fault_map::{BankFaultMap, FaultMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a synthetic fault map where each bit-cell independently fails
/// with probability `ber`, with fair-coin stuck polarity.
///
/// Synthetic maps have no profiled operating point; their `voltage` field
/// is 0.0.
///
/// # Panics
///
/// Panics unless `0.0 <= ber <= 1.0`.
pub fn bernoulli_fault_map(
    banks: usize,
    words: usize,
    word_bits: u8,
    ber: f64,
    seed: u64,
) -> FaultMap {
    assert!((0.0..=1.0).contains(&ber), "ber {ber} outside [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut maps = Vec::with_capacity(banks);
    for _ in 0..banks {
        let mut map = BankFaultMap::clean(words, word_bits);
        for w in 0..words {
            for b in 0..word_bits {
                if rng.gen::<f64>() < ber {
                    map.set_fault(w, b, rng.gen::<bool>());
                }
            }
        }
        maps.push(map);
    }
    FaultMap::new(0.0, 25.0, maps)
}

/// Builds a synthetic fault map where each bit-cell independently *flips*
/// (inverts on read) with probability `ber` — the i.i.d. random bit-error
/// model of Stutz et al., as opposed to the stuck-at semantics of
/// [`bernoulli_fault_map`].
///
/// Synthetic maps have no profiled operating point; their `voltage` field
/// is 0.0.
///
/// # Panics
///
/// Panics unless `0.0 <= ber <= 1.0`.
pub fn random_flip_map(banks: usize, words: usize, word_bits: u8, ber: f64, seed: u64) -> FaultMap {
    assert!((0.0..=1.0).contains(&ber), "ber {ber} outside [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut maps = Vec::with_capacity(banks);
    for _ in 0..banks {
        let mut map = BankFaultMap::clean(words, word_bits);
        for w in 0..words {
            for b in 0..word_bits {
                if rng.gen::<f64>() < ber {
                    map.set_flip(w, b);
                }
            }
        }
        maps.push(map);
    }
    FaultMap::new(0.0, 25.0, maps)
}

/// Builds a synthetic fault map with an exact number of faults, placed
/// uniformly at random without replacement (useful for tight sweeps at
/// small fault counts where Bernoulli sampling is noisy).
pub fn exact_fault_map(
    banks: usize,
    words: usize,
    word_bits: u8,
    fault_count: usize,
    seed: u64,
) -> FaultMap {
    let total = banks * words * word_bits as usize;
    assert!(fault_count <= total, "more faults than cells");
    let mut rng = StdRng::seed_from_u64(seed);
    // Partial Fisher-Yates over cell indices.
    let mut indices: Vec<usize> = (0..total).collect();
    for i in 0..fault_count {
        let j = rng.gen_range(i..total);
        indices.swap(i, j);
    }
    let mut map = FaultMap::clean(0.0, banks, words, word_bits);
    for &cell in &indices[..fault_count] {
        let bank = cell / (words * word_bits as usize);
        let rem = cell % (words * word_bits as usize);
        let word = rem / word_bits as usize;
        let bit = (rem % word_bits as usize) as u8;
        map.bank_mut(bank).set_fault(word, bit, rng.gen::<bool>());
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bernoulli_ber_converges() {
        let map = bernoulli_fault_map(4, 1024, 16, 0.10, 3);
        assert!((map.ber() - 0.10).abs() < 0.01, "ber = {}", map.ber());
    }

    #[test]
    fn bernoulli_zero_and_one_are_degenerate() {
        let clean = bernoulli_fault_map(2, 64, 16, 0.0, 1);
        assert_eq!(clean.fault_count(), 0);
        let broken = bernoulli_fault_map(2, 64, 16, 1.0, 1);
        assert_eq!(broken.fault_count(), 2 * 64 * 16);
    }

    #[test]
    fn bernoulli_is_deterministic_in_seed() {
        let a = bernoulli_fault_map(1, 256, 16, 0.3, 9);
        let b = bernoulli_fault_map(1, 256, 16, 0.3, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn polarities_are_roughly_balanced() {
        let map = bernoulli_fault_map(1, 4096, 16, 0.5, 5);
        let ones = map.records().iter().filter(|r| r.stuck_at_one).count() as f64;
        let frac = ones / map.fault_count() as f64;
        assert!((frac - 0.5).abs() < 0.03, "stuck-at-1 fraction {frac}");
    }

    #[test]
    fn flip_map_flips_and_converges() {
        let map = random_flip_map(4, 1024, 16, 0.10, 3);
        assert!((map.ber() - 0.10).abs() < 0.01, "ber = {}", map.ber());
        // Every fault is a flip, not a stuck-at.
        assert_eq!(map.records().len(), 0, "flips are not stuck-at records");
        // Applying twice round-trips the word.
        let bank = &map.banks()[0];
        let word = 0x5A5A & 0xFFFF;
        assert_eq!(bank.apply(0, bank.apply(0, word)), word);
    }

    #[test]
    fn flip_map_is_deterministic_in_seed() {
        let a = random_flip_map(1, 256, 16, 0.3, 9);
        let b = random_flip_map(1, 256, 16, 0.3, 9);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = random_flip_map(1, 256, 16, 0.3, 10);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn exact_count_is_exact() {
        for n in [0, 1, 17, 500] {
            let map = exact_fault_map(2, 64, 16, n, 42);
            assert_eq!(map.fault_count(), n);
        }
    }

    #[test]
    #[should_panic(expected = "more faults than cells")]
    fn exact_rejects_overfull() {
        exact_fault_map(1, 2, 8, 17, 0);
    }
}
