//! Monte-Carlo 6T SRAM read-stability fault model.
//!
//! This crate reproduces the failure physics that the MATIC paper (Kim et
//! al., DATE 2018, §II-B) builds on:
//!
//! * Variation-induced mismatch gives every 6T bit-cell a **preferred
//!   state**; the cell is biased towards flipping to that state during a
//!   read once supply voltage drops below its critical read voltage
//!   `Vmin,read`.
//! * Read-stability failures are therefore **random in space** (which cells
//!   fail is a lottery over process variation) but **stable in value** (a
//!   failed cell reads its preferred state consistently).
//! * Failures are **monotone in voltage**: every cell that fails at `V`
//!   also fails at any voltage below `V`.
//!
//! The paper's measured silicon (Fig. 9a) shows first failures at 0.53 V, a
//! 28 % bit-cell failure rate at the 0.50 V energy-optimal point, and all
//! reads failing by ≈0.40 V. [`VminDistribution::date2018`] encodes exactly
//! those anchors as an empirical inverse-CDF (no standard two-parameter
//! distribution fits both the deep tail and the bulk; see DESIGN.md).
//!
//! The crate models:
//!
//! * [`VminDistribution`] — per-cell `Vmin,read` statistics + temperature
//!   coefficient (temperature-inversion regime, §V-C);
//! * [`SramBank`] / [`SramArray`] — voltage-scalable weight memories with
//!   persistent flip-to-preferred read mechanics;
//! * [`profile_bank`] / [`profile_array`] — the paper's compile-time
//!   profiling procedure (read-after-write + read-after-read sweeps)
//!   producing [`FaultMap`]s of (word, bit, polarity) failures;
//! * [`FaultMap`] — per-word OR/AND injection masks, the exact object the
//!   memory-adaptive training loop consumes;
//! * [`inject`] — synthetic Bernoulli fault maps for the paper's Fig. 5
//!   feasibility study;
//! * [`fingerprint`] — stable 128-bit content hashes (FNV-1a/128 over the
//!   serde value tree) used by the sweep cache to address results by
//!   fault-map/configuration content.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod bank;
mod config;
mod dist;
mod fault_map;
pub mod fingerprint;
pub mod hybrid;
pub mod inject;
mod profile;

pub use array::SramArray;
pub use bank::SramBank;
pub use config::{ArrayConfig, SramConfig};
pub use dist::VminDistribution;
pub use fault_map::{BankFaultMap, FaultMap, FaultRecord};
pub use profile::{profile_array, profile_bank, ProfileReport};

#[cfg(test)]
mod proptests;
