//! The compile-time SRAM profiling procedure (paper §III-A).
//!
//! "The SRAM profiling procedure takes place once at compile time, and
//! consists of a read-after-write and read-after-read operation on each
//! SRAM address, at the target DNN accuracy level (bit-error proportion)."
//!
//! The implementation works only through the bank's functional port (write
//! at safe voltage, read at target voltage) — no oracle access — exactly
//! like the host-PC + debug-software flow on the test chip.

use crate::bank::SramBank;
use crate::fault_map::{BankFaultMap, FaultMap};
use serde::{Deserialize, Serialize};

/// Outcome of profiling one bank or array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Profiled operating point.
    pub voltage: f64,
    /// Profiled die temperature, °C.
    pub temp_c: f64,
    /// Bits that flipped on read-after-write.
    pub raw_failures: usize,
    /// Bits whose second read disagreed with the first
    /// (zero under the stable flip-to-preferred model; kept as a
    /// consistency check because real silicon can show metastable cells).
    pub unstable_bits: usize,
}

/// Profiles a single bank at `(voltage, temp_c)` and returns the fault map
/// plus a report.
///
/// The procedure, per address and test pattern (all-zeros then all-ones):
///
/// 1. raise the supply to a safe level and write the pattern;
/// 2. drop to the target voltage and read (**read-after-write**) — any flip
///    is a read-stability failure, its polarity the value read back;
/// 3. read again (**read-after-read**) to confirm the upset is stable.
///
/// Contents are test patterns, so profiling is destructive; the deployment
/// flow profiles before weights are loaded. The bank is left at the safe
/// voltage with zeroed contents.
pub fn profile_bank(
    bank: &mut SramBank,
    voltage: f64,
    temp_c: f64,
) -> (BankFaultMap, ProfileReport) {
    let cfg = bank.config().clone();
    let safe_v = cfg.dist.safe_voltage().max(0.9);
    let mut map = BankFaultMap::clean(cfg.words, cfg.word_bits);
    let mut raw_failures = 0usize;
    let mut unstable = 0usize;

    for pattern in [0u32, cfg.word_mask()] {
        // Write the pattern everywhere at a safe voltage.
        bank.set_operating_point(safe_v, temp_c);
        for addr in 0..cfg.words {
            bank.write(addr, pattern);
        }
        // Read back at the target voltage.
        bank.set_operating_point(voltage, temp_c);
        for addr in 0..cfg.words {
            let first = bank.read(addr); // read-after-write
            let second = bank.read(addr); // read-after-read
            unstable += (first ^ second).count_ones() as usize;
            let errors = (first ^ pattern) & cfg.word_mask();
            raw_failures += errors.count_ones() as usize;
            for bit in 0..cfg.word_bits {
                if (errors >> bit) & 1 == 1 {
                    // Polarity = the (stable) value the cell read back.
                    let stuck_at_one = (first >> bit) & 1 == 1;
                    map.set_fault(addr, bit, stuck_at_one);
                }
            }
        }
    }

    // Leave the bank in a safe, known state.
    bank.set_operating_point(safe_v, temp_c);
    for addr in 0..cfg.words {
        bank.write(addr, 0);
    }

    let report = ProfileReport {
        voltage,
        temp_c,
        raw_failures,
        unstable_bits: unstable,
    };
    (map, report)
}

/// Profiles every bank of an array (see [`profile_bank`]) and assembles the
/// array-wide [`FaultMap`].
pub fn profile_array(
    banks: &mut [SramBank],
    voltage: f64,
    temp_c: f64,
) -> (FaultMap, ProfileReport) {
    let mut maps = Vec::with_capacity(banks.len());
    let mut total = ProfileReport {
        voltage,
        temp_c,
        raw_failures: 0,
        unstable_bits: 0,
    };
    for bank in banks.iter_mut() {
        let (map, report) = profile_bank(bank, voltage, temp_c);
        total.raw_failures += report.raw_failures;
        total.unstable_bits += report.unstable_bits;
        maps.push(map);
    }
    (FaultMap::new(voltage, temp_c, maps), total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SramConfig;
    use crate::dist::VminDistribution;

    fn cfg(words: usize) -> SramConfig {
        SramConfig {
            words,
            word_bits: 16,
            dist: VminDistribution::date2018(),
        }
    }

    #[test]
    fn profiling_at_safe_voltage_finds_nothing() {
        let mut bank = SramBank::synthesize(&cfg(128), 4);
        let (map, report) = profile_bank(&mut bank, 0.9, 25.0);
        assert_eq!(map.fault_count(), 0);
        assert_eq!(report.raw_failures, 0);
        assert_eq!(report.unstable_bits, 0);
    }

    #[test]
    fn profile_matches_oracle_exactly() {
        let mut bank = SramBank::synthesize(&cfg(256), 17);
        let v = 0.48;
        let (map, report) = profile_bank(&mut bank, v, 25.0);
        // Ground truth from the oracle: every cell with Vmin > v fails,
        // with polarity = preferred state.
        let mut oracle_count = 0;
        for addr in 0..bank.words() {
            for bit in 0..16u8 {
                let fails = bank.cell_vmin(addr, bit) > v;
                if fails {
                    oracle_count += 1;
                    assert!(map.is_faulty(addr, bit), "missed fault @({addr},{bit})");
                    let (_, _, polarity) =
                        map.iter().find(|&(w, b, _)| w == addr && b == bit).unwrap();
                    assert_eq!(polarity, bank.cell_preferred(addr, bit));
                } else {
                    assert!(!map.is_faulty(addr, bit), "phantom fault @({addr},{bit})");
                }
            }
        }
        assert_eq!(map.fault_count(), oracle_count);
        assert_eq!(report.unstable_bits, 0);
        // Each faulty cell flips under exactly one of the two patterns.
        assert_eq!(report.raw_failures, oracle_count);
    }

    #[test]
    fn profiled_ber_tracks_distribution() {
        let mut bank = SramBank::synthesize(&cfg(4096), 8);
        let (map, _) = profile_bank(&mut bank, 0.50, 25.0);
        assert!((map.ber() - 0.28).abs() < 0.02, "ber = {}", map.ber());
    }

    #[test]
    fn lower_voltage_profiles_are_supersets() {
        let mut bank = SramBank::synthesize(&cfg(512), 13);
        let (hi, _) = profile_bank(&mut bank, 0.50, 25.0);
        let (lo, _) = profile_bank(&mut bank, 0.46, 25.0);
        assert!(hi.is_subset_of(&lo));
        assert!(lo.fault_count() > hi.fault_count());
    }

    #[test]
    fn temperature_shifts_profile() {
        let mut bank = SramBank::synthesize(&cfg(2048), 99);
        let (cold, _) = profile_bank(&mut bank, 0.49, -15.0);
        let (hot, _) = profile_bank(&mut bank, 0.49, 90.0);
        assert!(
            cold.fault_count() > hot.fault_count(),
            "cold {} vs hot {}",
            cold.fault_count(),
            hot.fault_count()
        );
        // Same voltage, hotter die ⇒ failures are a subset of the cold ones.
        assert!(hot.is_subset_of(&cold));
    }

    #[test]
    fn profile_array_aggregates_banks() {
        let mut banks: Vec<SramBank> = (0..4)
            .map(|i| SramBank::synthesize(&cfg(128), 100 + i))
            .collect();
        let (map, report) = profile_array(&mut banks, 0.47, 25.0);
        assert_eq!(map.banks().len(), 4);
        assert_eq!(map.fault_count(), report.raw_failures);
        assert!(map.fault_count() > 0);
    }
}
