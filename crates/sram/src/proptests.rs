//! Property-based tests over the SRAM fault model.

use crate::*;
use proptest::prelude::*;

fn small_cfg(words: usize) -> SramConfig {
    SramConfig {
        words,
        word_bits: 16,
        dist: VminDistribution::date2018(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Reads at any operating point only ever move cells *towards* their
    /// preferred state, and repeated reads are stable.
    #[test]
    fn reads_flip_to_preferred_and_stabilize(
        seed in 0u64..1000,
        v in 0.40f64..0.60,
        pattern in 0u32..=0xFFFF,
    ) {
        let mut bank = SramBank::synthesize(&small_cfg(32), seed);
        bank.set_operating_point(v, 25.0);
        for addr in 0..bank.words() {
            bank.write(addr, pattern);
        }
        for addr in 0..bank.words() {
            let first = bank.read(addr);
            let flipped = first ^ pattern;
            for bit in 0..16u8 {
                if (flipped >> bit) & 1 == 1 {
                    prop_assert_eq!(
                        (first >> bit) & 1 == 1,
                        bank.cell_preferred(addr, bit)
                    );
                }
            }
            prop_assert_eq!(bank.read(addr), first);
        }
    }

    /// Fault maps profiled at a higher voltage are subsets of maps profiled
    /// at any lower voltage (same silicon, same temperature).
    #[test]
    fn profile_monotone_in_voltage(
        seed in 0u64..500,
        v_pair in (0.42f64..0.54, 0.42f64..0.54),
    ) {
        let (a, b) = v_pair;
        let (v_hi, v_lo) = if a >= b { (a, b) } else { (b, a) };
        let mut bank = SramBank::synthesize(&small_cfg(64), seed);
        let (map_hi, _) = profile_bank(&mut bank, v_hi, 25.0);
        let (map_lo, _) = profile_bank(&mut bank, v_lo, 25.0);
        prop_assert!(map_hi.is_subset_of(&map_lo));
    }

    /// Applying a fault map is idempotent, and output bits always agree
    /// with the map's stuck polarities.
    #[test]
    fn fault_map_apply_idempotent(
        ber in 0.0f64..0.6,
        seed in 0u64..1000,
        word in 0u32..=0xFFFF,
    ) {
        let map = inject::bernoulli_fault_map(1, 16, 16, ber, seed);
        for addr in 0..16 {
            let once = map.apply(0, addr, word);
            prop_assert_eq!(map.apply(0, addr, once), once);
            let bank_map = &map.banks()[0];
            prop_assert_eq!(once & bank_map.or_mask(addr), bank_map.or_mask(addr));
            prop_assert_eq!(once & !bank_map.and_mask(addr) & 0xFFFF, 0);
        }
    }

    /// The i.i.d. random-flip injector produces a flip count within exact
    /// binomial bounds for every seed: |k - np| <= 6·sqrt(np(1-p)) + 1,
    /// a ~6-sigma envelope that a correct Bernoulli sampler essentially
    /// never leaves and a biased one essentially always does.
    #[test]
    fn random_flip_count_within_binomial_bounds(
        ber in 0.001f64..0.5,
        seed in 0u64..500,
    ) {
        let (banks, words, bits) = (2usize, 256usize, 16u8);
        let map = inject::random_flip_map(banks, words, bits, ber, seed);
        let n = (banks * words * bits as usize) as f64;
        let k = map.fault_count() as f64;
        let sigma = (n * ber * (1.0 - ber)).sqrt();
        prop_assert!(
            (k - n * ber).abs() <= 6.0 * sigma + 1.0,
            "k = {}, np = {}, sigma = {}", k, n * ber, sigma
        );
        // Flips only: no stuck-at records, and apply is an involution.
        prop_assert_eq!(map.records().len(), 0);
        let bank_map = &map.banks()[0];
        for addr in 0..words {
            let once = bank_map.apply(addr, 0xA5C3);
            prop_assert_eq!(bank_map.apply(addr, once), 0xA5C3);
        }
    }

    /// Profiling never reports unstable bits under the stable-upset model,
    /// and finds exactly the oracle's fault count.
    #[test]
    fn profile_matches_oracle(seed in 0u64..300, v in 0.43f64..0.53) {
        let mut bank = SramBank::synthesize(&small_cfg(48), seed);
        let (map, report) = profile_bank(&mut bank, v, 25.0);
        prop_assert_eq!(report.unstable_bits, 0);
        let oracle: usize = (0..bank.words())
            .map(|w| (0..16u8).filter(|&b| bank.cell_vmin(w, b) > v).count())
            .sum();
        prop_assert_eq!(map.fault_count(), oracle);
    }

    /// The analytic fail-rate curve is the CDF of sampled cells: oracle
    /// fail fraction converges to `fail_rate(v)`.
    #[test]
    fn population_matches_curve(seed in 0u64..50, v in 0.44f64..0.52) {
        let bank = SramBank::synthesize(&small_cfg(2048), seed);
        let expected = VminDistribution::date2018().fail_rate(v);
        let measured = bank.fail_fraction_at(v, 25.0);
        prop_assert!((measured - expected).abs() < 0.03);
    }

    /// Temperature monotonicity: for any cell, hotter die ⇒ lower
    /// effective Vmin (below the inversion point).
    #[test]
    fn hotter_never_fails_more(seed in 0u64..200, v in 0.42f64..0.54,
                               t_pair in (-15.0f64..90.0, -15.0f64..90.0)) {
        let (a, b) = t_pair;
        let (t_cold, t_hot) = if a <= b { (a, b) } else { (b, a) };
        let bank = SramBank::synthesize(&small_cfg(64), seed);
        prop_assert!(
            bank.fail_fraction_at(v, t_hot) <= bank.fail_fraction_at(v, t_cold)
        );
    }
}
