//! Closed-loop canary voltage control under a temperature ramp — the
//! Fig. 12 experiment as a runnable demo, with the control routine
//! executing on the chip's MSP430-style microcontroller.
//!
//! Run with: `cargo run --release --example canary_runtime`

use matic_core::{DeploymentFlow, MatConfig};
use matic_datasets::Benchmark;
use matic_snnac::{Chip, ChipConfig};

fn main() {
    println!("== in-situ canary runtime: voltage tracking a temperature ramp ==\n");

    let bench = Benchmark::InverseK2j;
    let split = bench.generate_scaled(3, 0.8);
    let mut chip = Chip::synthesize(ChipConfig::snnac(), 0xCAFE);

    let flow = DeploymentFlow {
        mat: MatConfig {
            sgd: bench.sgd(),
            ..MatConfig::paper()
        },
        ..DeploymentFlow::new(0.50)
    };
    let mut net = chip.deploy(&flow, &bench.topology(), &split.train);
    println!(
        "deployed {} with {} canaries ({} per bank), target 0.50 V",
        bench,
        net.deployment().controller().canaries().cells().len(),
        flow.canaries_per_bank
    );

    println!(
        "\n{:>10} | {:>12} | {:>12} | {:>8}",
        "T (degC)", "V_sram (V)", "test MSE", "uC runs"
    );
    println!("{:-<10}-+-{:-<12}-+-{:-<12}-+-{:-<8}", "", "", "", "");

    // Chamber profile: 25 -> -15 -> 90 degC in 15 degC steps.
    let mut temps = vec![25.0];
    let mut t = 25.0f64;
    while t > -15.0 {
        t = (t - 15.0).max(-15.0);
        temps.push(t);
    }
    while t < 90.0 {
        t = (t + 15.0).min(90.0);
        temps.push(t);
    }

    for temp in temps {
        chip.set_temperature(temp);
        // Between inferences, the sleep-enabled uC wakes and runs
        // Algorithm 1 as machine code.
        let v = chip.poll_canaries_via_uc(&mut net);
        // Spot-check accuracy at the settled point.
        let mut mse = 0.0;
        for s in split.test.iter().take(40) {
            let (out, _) = chip.infer(&net, &s.input);
            mse += out
                .iter()
                .zip(&s.target)
                .map(|(y, t)| (y - t) * (y - t))
                .sum::<f64>()
                / out.len() as f64;
        }
        mse /= 40.0;
        println!("{temp:>10.0} | {v:>12.3} | {mse:>12.4} | {:>8}", 1);
    }

    println!("\nThe rail climbs as the die cools (higher Vmin below the");
    println!("temperature-inversion point) and descends as it heats — no");
    println!("static margin, accuracy held throughout.");
}
