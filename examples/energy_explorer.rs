//! Energy exploration: Table II scenarios, the minimum-energy point, and
//! GOPS/W accounting from the calibrated chip model.
//!
//! Run with: `cargo run --release --example energy_explorer`

use matic_energy::{gops_per_watt, EnergyModel, OperatingPoint, Scenario};

fn main() {
    println!("== SNNAC energy model explorer ==\n");
    let model = EnergyModel::snnac();

    println!("operating scenarios (Table II):");
    for s in Scenario::ALL {
        let r = s.evaluate(&model);
        println!(
            "  {:<12} logic {:.2} V / sram {:.2} V / {:>5.1} MHz : {:>6.2} pJ/cy (baseline {:>6.2}) -> {:.2}x saving",
            s.name(),
            r.op.v_logic,
            r.op.v_sram,
            r.op.freq_hz / 1e6,
            r.total_pj(),
            r.baseline_total_pj(),
            r.reduction()
        );
    }

    let mep = model.joint_mep();
    println!(
        "\njoint minimum-energy point: {:.3} V @ {:.1} MHz, {:.2} pJ/cycle",
        mep.v_logic,
        mep.freq_hz / 1e6,
        model.total_pj(mep)
    );

    println!("\nunified-rail energy vs voltage (the MEP bathtub):");
    println!(
        "{:>8} | {:>9} | {:>10} | {:>10} | {:>10}",
        "V", "f (MHz)", "logic pJ", "sram pJ", "total pJ"
    );
    println!(
        "{:-<8}-+-{:-<9}-+-{:-<10}-+-{:-<10}-+-{:-<10}",
        "", "", "", "", ""
    );
    let mut v = 0.53;
    while v <= 0.76 {
        let f = model.delay().frequency(v);
        let op = OperatingPoint {
            v_logic: v,
            v_sram: v,
            freq_hz: f,
        };
        println!(
            "{v:>8.2} | {:>9.1} | {:>10.2} | {:>10.2} | {:>10.2}",
            f / 1e6,
            model.logic_breakdown(op).total_pj(),
            model.sram_breakdown(op).total_pj(),
            model.total_pj(op)
        );
        v += 0.02;
    }

    println!("\nefficiency (8 MACs/cycle, Table III):");
    println!("  nominal      : {:>6.1} GOPS/W", gops_per_watt(67.08));
    let split = Scenario::EnOptSplit.evaluate(&model);
    println!(
        "  with MATIC   : {:>6.1} GOPS/W ({:.2} mW @ {:.1} MHz)",
        gops_per_watt(split.total_pj()),
        split.total_pj() * 1e-12 * split.op.freq_hz * 1e3,
        split.op.freq_hz / 1e6
    );
}
