//! Domain demo: a 2-link robot arm tracking a trajectory with its inverse
//! kinematics computed by the deployed network on the voltage-overscaled
//! accelerator — the paper's motivating approximate-computing use case.
//!
//! Run with: `cargo run --release --example inversek2j_arm`

use matic_core::{DeploymentFlow, MatConfig};
use matic_datasets::{forward_kinematics, inverse_kinematics, Benchmark};
use matic_snnac::{Chip, ChipConfig};
use std::f64::consts::FRAC_PI_2;

fn main() {
    println!("== 2-link arm: NN inverse kinematics on an overscaled SNNAC ==\n");

    let split = inverse_kinematics(1200, 11);
    let mut chip = Chip::synthesize(ChipConfig::snnac(), 0xA21);
    let flow = DeploymentFlow {
        mat: MatConfig {
            sgd: Benchmark::InverseK2j.sgd(),
            ..MatConfig::paper()
        },
        ..DeploymentFlow::new(0.50)
    };
    let mut net = chip.deploy(&flow, &Benchmark::InverseK2j.topology(), &split.train);
    let v = chip.poll_canaries_via_uc(&mut net);
    println!("deployed at {v:.3} V SRAM (28 % of bit-cells past their Vmin)\n");

    // Track a quarter-circle arc through the reachable workspace.
    println!(
        "{:>6} | {:>16} | {:>16} | {:>10}",
        "step", "target (x, y)", "reached (x, y)", "error"
    );
    println!("{:-<6}-+-{:-<16}-+-{:-<16}-+-{:-<10}", "", "", "", "");
    let mut worst = 0.0f64;
    let mut mean = 0.0f64;
    let n = 12;
    for i in 0..n {
        let phase = i as f64 / (n - 1) as f64;
        // A target path parameterized in joint space (guaranteed reachable).
        let t1 = 0.2 + 0.9 * phase;
        let t2 = 1.2 - 0.8 * phase;
        let (x, y) = forward_kinematics(t1, t2);
        let (out, _) = chip.infer(&net, &[x, y]);
        let (rx, ry) = forward_kinematics(out[0] * FRAC_PI_2, out[1] * FRAC_PI_2);
        let err = ((rx - x).powi(2) + (ry - y).powi(2)).sqrt();
        worst = worst.max(err);
        mean += err;
        println!("{i:>6} | ({x:>6.3}, {y:>6.3}) | ({rx:>6.3}, {ry:>6.3}) | {err:>10.4}");
    }
    mean /= n as f64;
    println!("\nmean end-effector error {mean:.4}, worst {worst:.4} (arm length 1.0)");
    println!("the arm tracks the path on a chip whose weight memory runs");
    println!("60-80 mV past the point of first read failure.");
}
