//! SRAM profiling demo: the compile-time flow of §III-A on one die —
//! read-after-write / read-after-read sweeps building the fault map, plus
//! the failure-rate curve and a look at fault-map structure.
//!
//! Run with: `cargo run --release --example profile_sram`

use matic_snnac::{Chip, ChipConfig};

fn main() {
    println!("== SRAM read-stability profiling on a synthesized die ==\n");
    let mut chip = Chip::synthesize(ChipConfig::snnac(), 2024);

    println!("failure-rate curve (profiled through the functional port):");
    println!("{:>8} | {:>12} | {:>10}", "V (V)", "faulty bits", "BER");
    println!("{:-<8}-+-{:-<12}-+-{:-<10}", "", "", "");
    for v in [0.53, 0.52, 0.51, 0.50, 0.48, 0.46, 0.44, 0.42, 0.40] {
        let map = chip.profile(v);
        println!(
            "{v:>8.2} | {:>12} | {:>9.4}%",
            map.fault_count(),
            100.0 * map.ber()
        );
    }

    // Structure of the 0.50 V map: polarity balance and per-bank spread.
    let map = chip.profile(0.50);
    let records = map.records();
    let stuck_one = records.iter().filter(|r| r.stuck_at_one).count();
    println!("\nfault map at 0.50 V:");
    println!(
        "  {} faults; {:.1} % stuck-at-1 / {:.1} % stuck-at-0",
        records.len(),
        100.0 * stuck_one as f64 / records.len() as f64,
        100.0 * (records.len() - stuck_one) as f64 / records.len() as f64
    );
    for (bank, bank_map) in map.banks().iter().enumerate() {
        println!(
            "  bank {bank}: {:>5} faults ({:.2} % of cells)",
            bank_map.fault_count(),
            100.0 * bank_map.ber()
        );
    }

    // Voltage monotonicity: the 0.52 V map is a subset of the 0.50 V map.
    let hi = chip.profile(0.52);
    let lo = chip.profile(0.50);
    println!(
        "\nmonotonicity check: faults(0.52 V) ⊆ faults(0.50 V): {}",
        hi.is_subset_of(&lo)
    );
}
