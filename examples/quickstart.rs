//! Quickstart: the full MATIC flow on one chip, end to end.
//!
//! Synthesizes an SNNAC die, runs the Fig. 3 deployment flow for the
//! inverse-kinematics benchmark at a 0.50 V target (28 % of weight
//! bit-cells stuck), lets the in-situ canary controller find the true
//! operating point, and compares accuracy and energy against nominal.
//!
//! Run with: `cargo run --release --example quickstart`

use matic::prelude::*;
use matic_core::DeploymentFlow;
use matic_datasets::Benchmark;

fn main() {
    let bench = Benchmark::InverseK2j;
    let split = bench.generate_scaled(7, 0.5);

    println!("== MATIC quickstart: {bench} on a synthesized SNNAC die ==\n");

    // One die from the shuttle run.
    let mut chip = Chip::synthesize(ChipConfig::snnac(), 0xD1E);
    println!(
        "chip: {} banks x {} words x {} bit weight SRAM ({} KB)",
        chip.config().array.banks,
        chip.config().array.bank.words,
        chip.config().array.bank.word_bits,
        chip.config().array.bytes() / 1024
    );

    // Compile-time flow: profile -> memory-adaptive training -> canary
    // selection -> upload & arm.
    let flow = DeploymentFlow::new(0.50);
    let mut net = chip.deploy(&flow, &bench.topology(), &split.train);
    let map = net.deployment().fault_map();
    println!(
        "profiled {} stuck bits at 0.50 V ({:.1} % BER); trained around them",
        map.fault_count(),
        100.0 * map.ber()
    );

    // Runtime: Algorithm 1 on the integrated microcontroller.
    let settled = chip.poll_canaries_via_uc(&mut net);
    println!("canary controller settled the SRAM rail at {settled:.3} V\n");

    // Evaluate through the NPU at the settled voltage.
    let mut mse = 0.0;
    let mut energy_pj = 0.0;
    let mut cycles = 0u64;
    for s in &split.test {
        let (out, stats) = chip.infer(&net, &s.input);
        mse += out
            .iter()
            .zip(&s.target)
            .map(|(y, t)| (y - t) * (y - t))
            .sum::<f64>()
            / out.len() as f64;
        energy_pj += stats.energy_pj;
        cycles += stats.npu.cycles;
    }
    mse /= split.test.len() as f64;
    let per_inf = energy_pj / split.test.len() as f64;

    // The nominal reference: same model, SRAM at 0.9 V.
    chip.set_sram_voltage(0.9);
    let mut mse_nom = 0.0;
    let mut energy_nom = 0.0;
    for s in &split.test {
        let (out, stats) = chip.infer(&net, &s.input);
        mse_nom += out
            .iter()
            .zip(&s.target)
            .map(|(y, t)| (y - t) * (y - t))
            .sum::<f64>()
            / out.len() as f64;
        energy_nom += stats.energy_pj;
    }
    mse_nom /= split.test.len() as f64;
    energy_nom /= split.test.len() as f64;

    println!("results over {} test samples:", split.test.len());
    println!("  MSE  @ {settled:.3} V : {mse:.4}");
    println!("  MSE  @ 0.900 V : {mse_nom:.4}");
    println!(
        "  energy/inference @ {settled:.3} V : {:.1} nJ ({cycles} cycles total)",
        per_inf / 1e3
    );
    println!("  energy/inference @ 0.900 V : {:.1} nJ", energy_nom / 1e3);
    println!(
        "  SRAM-rail energy saving: {:.2}x with accuracy within noise of nominal",
        energy_nom / per_inf
    );
}
