//! Voltage sweep: naive vs memory-adaptive error across the overscaling
//! range (the Fig. 10 experiment, single benchmark).
//!
//! Run with: `cargo run --release --example voltage_sweep [mnist|facedet|inversek2j|bscholes]`

use matic_core::{train_naive, upload_weights, MatConfig, MatTrainer};
use matic_datasets::Benchmark;
use matic_snnac::microcode::Program;
use matic_snnac::{Chip, ChipConfig, Snnac};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "mnist".into());
    let bench = match which.as_str() {
        "mnist" => Benchmark::Mnist,
        "facedet" => Benchmark::FaceDet,
        "inversek2j" => Benchmark::InverseK2j,
        "bscholes" => Benchmark::BScholes,
        other => {
            eprintln!("unknown benchmark `{other}`");
            std::process::exit(1);
        }
    };

    println!("== naive vs MATIC across SRAM voltage: {bench} ==\n");
    let split = bench.generate_scaled(42, 1.0);
    let spec = bench.topology();
    let cfg = MatConfig {
        sgd: bench.sgd(),
        restarts: if bench.topology().layers[1] <= 16 { 3 } else { 1 },
        ..MatConfig::paper()
    };
    let mut chip = Chip::synthesize(ChipConfig::snnac(), 99);
    let naive = train_naive(
        &spec,
        &split.train,
        &cfg,
        chip.config().array.banks,
        chip.config().array.bank.words,
    );

    let eval = |chip: &mut Chip, model: &matic_core::TrainedModel, v: f64| -> f64 {
        chip.set_sram_voltage(0.9);
        upload_weights(model, chip.array_mut());
        chip.set_sram_voltage(v);
        let npu = Snnac::snnac(model.format());
        let program = Program::compile(model.master().spec(), npu.pe_count());
        let mut wrong = 0usize;
        let mut mse = 0.0;
        for s in &split.test {
            let (out, _) = npu.execute(&program, model.layout(), chip.array_mut(), &s.input);
            if bench.is_classification() {
                let ok = if out.len() == 1 {
                    (out[0] >= 0.5) == (s.target[0] >= 0.5)
                } else {
                    let am = |v: &[f64]| {
                        (0..v.len()).max_by(|&a, &b| v[a].partial_cmp(&v[b]).unwrap()).unwrap()
                    };
                    am(&out) == am(&s.target)
                };
                if !ok {
                    wrong += 1;
                }
            } else {
                mse += out
                    .iter()
                    .zip(&s.target)
                    .map(|(y, t)| (y - t) * (y - t))
                    .sum::<f64>()
                    / out.len() as f64;
            }
        }
        if bench.is_classification() {
            100.0 * wrong as f64 / split.test.len() as f64
        } else {
            mse / split.test.len() as f64
        }
    };

    let nominal = eval(&mut chip, &naive, 0.9);
    println!("nominal error @0.9 V: {nominal:.3}\n");
    println!("{:>8} | {:>10} | {:>10}", "V (V)", "naive", "MATIC");
    println!("{:-<8}-+-{:-<10}-+-{:-<10}", "", "", "");
    for v in [0.53, 0.52, 0.51, 0.50, 0.48, 0.46] {
        let map = chip.profile(v);
        let adaptive = MatTrainer::new(spec.clone(), cfg.clone()).train(&split.train, &map);
        let e_naive = eval(&mut chip, &naive, v);
        let e_adapt = eval(&mut chip, &adaptive, v);
        println!("{v:>8.2} | {e_naive:>10.3} | {e_adapt:>10.3}");
    }
}
