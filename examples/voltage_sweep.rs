//! Voltage sweep: naive vs memory-adaptive error across the overscaling
//! range (the Fig. 10 experiment, single benchmark), driven by the
//! `matic-harness` sweep engine.
//!
//! Run with: `cargo run --release --example voltage_sweep [mnist|facedet|inversek2j|bscholes]`
//!
//! For population sweeps (many chips, JSON/CSV reports, all benchmarks)
//! use the CLI instead: `cargo run --release -- sweep --chips 8`.

use matic::harness::{SweepPlan, TrainingMode};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "mnist".into());
    let plan = SweepPlan::builder()
        .chips(1)
        .voltages(&[0.53, 0.52, 0.51, 0.50, 0.48, 0.46])
        .benchmark(&which)
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(1);
        })
        .modes(&[TrainingMode::Naive, TrainingMode::Mat])
        .seed(99)
        .build()
        .expect("sweep plan is valid");

    println!("== naive vs MATIC across SRAM voltage: {which} ==\n");
    let report = matic::harness::run_sweep(&plan);

    println!(
        "nominal error @0.9 V: {:.3}\n",
        report.cells[0].nominal_error
    );
    println!("{:>8} | {:>10} | {:>10}", "V (V)", "naive", "MATIC");
    println!("{:-<8}-+-{:-<10}-+-{:-<10}", "", "", "");
    for &v in plan.axis.points() {
        let err = |mode: &str| {
            report
                .cells
                .iter()
                .find(|c| c.mode == mode && c.voltage == Some(v))
                .expect("cell exists for every (mode, voltage)")
                .error
        };
        println!("{v:>8.2} | {:>10.3} | {:>10.3}", err("naive"), err("mat"));
    }
}
