#!/usr/bin/env python3
"""Gate kernel-bench results against the committed baseline.

Usage: bench_compare.py BASELINE.json FRESH.json [TOLERANCE]

Compares per-bench medians from a fresh `cargo bench -p matic-bench
--bench kernels` run (schema `matic-bench-kernel/1`) against the
committed `BENCH_kernel.json` baseline.

The baseline was recorded on whatever machine last regenerated it, so
absolute nanoseconds are not comparable across hardware. The gate
therefore normalizes: it computes each bench's fresh/baseline ratio,
takes the **median ratio** as the machine-speed factor between the two
environments, and fails a bench only when its own ratio exceeds
TOLERANCE x that factor (default 2.0). A uniformly slower (or faster)
runner shifts every ratio equally and cancels out; a single kernel
regressing — the composed path falling back to per-MAC work, a blocked
loop deoptimizing — sticks out of the normalized field and trips the
gate. The trade-off is explicit: a regression hitting *every* kernel
equally is absorbed (it is indistinguishable from slower hardware
without a runner-native baseline); the uploaded artifact keeps the raw
numbers for trend inspection.

Mismatched bench sets fail in BOTH directions. A bench in the baseline
but missing from the fresh run means a bench was deleted or the harness
silently stopped measuring something we gate on. A bench in the fresh
run but absent from the baseline means someone added a kernel entry
without regenerating and committing `BENCH_kernel.json` — the new
kernel would otherwise ride along ungated forever.
"""

import json
import statistics
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    if data.get("schema") != "matic-bench-kernel/1":
        sys.exit(f"{path}: unexpected schema {data.get('schema')!r}")
    return {b["name"]: b for b in data["benches"]}


def main():
    if len(sys.argv) not in (3, 4):
        sys.exit(__doc__)
    baseline = load(sys.argv[1])
    fresh = load(sys.argv[2])
    tolerance = float(sys.argv[3]) if len(sys.argv) == 4 else 2.0

    failures = []
    ratios = {}
    for name, ref in baseline.items():
        cur = fresh.get(name)
        if cur is None:
            failures.append(f"{name}: missing from fresh results")
        elif ref["median_ns"] <= 0:
            # A zero/negative baseline median would silently exempt the
            # bench from the gate forever — that's a broken baseline.
            failures.append(f"{name}: baseline median_ns {ref['median_ns']} is not gateable")
        else:
            ratios[name] = cur["median_ns"] / ref["median_ns"]
    if not ratios:
        sys.exit("no common benches between baseline and fresh results")
    speed = statistics.median(ratios.values())
    print(
        f"machine-speed factor (median fresh/baseline ratio over "
        f"{len(ratios)} benches): {speed:.2f}x"
    )

    print(f"\n{'bench':<36} {'baseline':>12} {'fresh':>12} {'ratio':>7} {'norm':>6}  verdict")
    for name, ref in sorted(baseline.items()):
        cur = fresh.get(name)
        if cur is None:
            print(f"{name:<36} {ref['median_ns']:>10}ns {'-':>12} {'-':>7} {'-':>6}  MISSING")
            continue
        if name not in ratios:
            print(
                f"{name:<36} {ref['median_ns']:>10}ns {cur['median_ns']:>10}ns "
                f"{'-':>7} {'-':>6}  BAD BASELINE"
            )
            continue
        ratio = ratios[name]
        norm = ratio / speed
        verdict = "ok" if norm <= tolerance else f"REGRESSION (> {tolerance:g}x normalized)"
        if norm > tolerance:
            failures.append(
                f"{name}: median {cur['median_ns']}ns vs baseline {ref['median_ns']}ns "
                f"({ratio:.2f}x raw, {norm:.2f}x normalized > {tolerance:g}x)"
            )
        print(
            f"{name:<36} {ref['median_ns']:>10}ns {cur['median_ns']:>10}ns "
            f"{ratio:>6.2f}x {norm:>5.2f}x  {verdict}"
        )
    for name in sorted(set(fresh) - set(baseline)):
        print(
            f"{name:<36} {'-':>12} {fresh[name]['median_ns']:>10}ns "
            f"{'-':>7} {'-':>6}  NOT IN BASELINE"
        )
        failures.append(
            f"{name}: present in fresh results but not in the baseline — "
            f"regenerate and commit BENCH_kernel.json to gate the new bench"
        )

    if failures:
        print("\nbench regression gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print(
        f"\nbench regression gate passed "
        f"({len(baseline)} benches, tolerance {tolerance:g}x normalized)"
    )


if __name__ == "__main__":
    main()
