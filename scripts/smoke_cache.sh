#!/usr/bin/env bash
# The resume contract: a warm re-run over a fully cached grid and a
# resume over a half-deleted cache must both reproduce the cold run's
# bytes (and the warm run does zero training work).
set -euo pipefail
MATIC=${MATIC:-./target/release/matic}

# --quiet silences all narration, so the cold run doubles as the quiet
# contract check: its stderr must be empty.
"$MATIC" sweep --chips 2 --voltages 0.50,0.90 \
  --benchmarks inversek2j --scale 0.2 --epochs 0.3 \
  --cache-dir ci-cache --threads 2 --quiet --out sweep-cold.json \
  2> cold-stderr.txt
test ! -s cold-stderr.txt
"$MATIC" cache stats --cache-dir ci-cache
"$MATIC" sweep --chips 2 --voltages 0.50,0.90 \
  --benchmarks inversek2j --scale 0.2 --epochs 0.3 \
  --cache-dir ci-cache --threads 4 --out sweep-warm.json \
  2> warm-stderr.txt
cat warm-stderr.txt
grep -q "cache: 8 hits, 0 misses" warm-stderr.txt
cmp sweep-cold.json sweep-warm.json
# Partial resume: delete half the checkpointed cells, re-run.
ls ci-cache/cells/*.json | head -n 4 | xargs rm
"$MATIC" sweep --chips 2 --voltages 0.50,0.90 \
  --benchmarks inversek2j --scale 0.2 --epochs 0.3 \
  --cache-dir ci-cache --threads 3 --out sweep-partial.json \
  2> partial-stderr.txt
cat partial-stderr.txt
grep -q "cache: 4 hits, 4 misses" partial-stderr.txt
cmp sweep-cold.json sweep-partial.json
