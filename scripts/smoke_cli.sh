#!/usr/bin/env bash
# CLI smoke: the report is byte-identical for every --threads value.
set -euo pipefail
MATIC=${MATIC:-./target/release/matic}

"$MATIC" list
"$MATIC" sweep --chips 2 --voltages 0.50,0.90 \
  --benchmarks inversek2j --scale 0.2 --epochs 0.3 \
  --threads 1 --quiet --out sweep-t1.json
"$MATIC" sweep --chips 2 --voltages 0.50,0.90 \
  --benchmarks inversek2j --scale 0.2 --epochs 0.3 \
  --threads 4 --quiet --out sweep-t4.json
cmp sweep-t1.json sweep-t4.json
