#!/usr/bin/env bash
# The three-model comparison at matched stress: runs every model,
# prints the naive/MAT/MAT+canary table, and its JSON is stable.
set -euo pipefail
MATIC=${MATIC:-./target/release/matic}

"$MATIC" compare-models --chips 2 \
  --benchmarks inversek2j --scale 0.2 --epochs 0.3 \
  --cache-dir compare-cache --out compare-a.json
"$MATIC" compare-models --chips 2 \
  --benchmarks inversek2j --scale 0.2 --epochs 0.3 \
  --cache-dir compare-cache --quiet --out compare-b.json
cmp compare-a.json compare-b.json
grep -q '"schema": "matic.compare-models/v1"' compare-a.json
grep -q '"model": "timing-error"' compare-a.json
