#!/usr/bin/env bash
# The accuracy-energy analysis is a pure function of the sweep report,
# so a cold sweep, a fully cached replay, and the --report path over
# the sweep's own JSON must all emit byte-identical energy reports.
set -euo pipefail
MATIC=${MATIC:-./target/release/matic}

"$MATIC" energy --chips 2 --voltages 0.90,0.65,0.55,0.50 \
  --benchmarks inversek2j --modes mat --scale 0.2 --epochs 0.3 \
  --cache-dir energy-cache --threads 2 --quiet --out energy-cold.json
"$MATIC" energy --chips 2 --voltages 0.90,0.65,0.55,0.50 \
  --benchmarks inversek2j --modes mat --scale 0.2 --epochs 0.3 \
  --cache-dir energy-cache --threads 4 --out energy-warm.json \
  2> energy-warm-stderr.txt
cat energy-warm-stderr.txt
grep -q "cache: 8 hits, 0 misses" energy-warm-stderr.txt
cmp energy-cold.json energy-warm.json
"$MATIC" sweep --chips 2 --voltages 0.90,0.65,0.55,0.50 \
  --benchmarks inversek2j --modes mat --scale 0.2 --epochs 0.3 \
  --cache-dir energy-cache --threads 3 --quiet --out energy-sweep.json
"$MATIC" energy --report energy-sweep.json \
  --quiet --out energy-from-report.json
cmp energy-cold.json energy-from-report.json
