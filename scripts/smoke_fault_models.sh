#!/usr/bin/env bash
# Every fault model honors the same contracts: a cold cached run, a
# warm replay, and a fresh uncached run of the same plan must all emit
# byte-identical reports.
set -euo pipefail
MATIC=${MATIC:-./target/release/matic}

for leg in "voltage:--voltages 0.50,0.90" \
           "ber:--bers 0.001,0.004" \
           "clock:--clock-stress 0.4,0.8"; do
  name="${leg%%:*}"; axis="${leg#*:}"
  "$MATIC" sweep --chips 2 $axis \
    --benchmarks inversek2j --scale 0.2 --epochs 0.3 \
    --cache-dir "model-cache-$name" --threads 2 --quiet \
    --out "model-$name-cold.json"
  "$MATIC" sweep --chips 2 $axis \
    --benchmarks inversek2j --scale 0.2 --epochs 0.3 \
    --cache-dir "model-cache-$name" --threads 4 \
    --out "model-$name-warm.json" 2> "model-$name-warm-stderr.txt"
  grep -q "cache: 8 hits, 0 misses" "model-$name-warm-stderr.txt"
  cmp "model-$name-cold.json" "model-$name-warm.json"
  "$MATIC" sweep --chips 2 $axis \
    --benchmarks inversek2j --scale 0.2 --epochs 0.3 \
    --no-cache --threads 3 --quiet --out "model-$name-fresh.json"
  cmp "model-$name-cold.json" "model-$name-fresh.json"
done
