#!/usr/bin/env bash
# Kernel-tier byte parity: a release sweep forced onto the scalar
# kernels (with single-sample eval batches) and one forced onto the
# lane-packed tier (with an odd batch shape) must emit byte-identical
# reports to the auto-dispatched run. Lane-packed and batched kernels
# are pure reassociations of exact integer arithmetic, so any differing
# byte is a real kernel bug, not float noise.
set -euo pipefail
MATIC=${MATIC:-./target/release/matic}

"$MATIC" sweep --chips 2 --voltages 0.50,0.90 \
  --benchmarks inversek2j --scale 0.2 --epochs 0.3 \
  --threads 4 --quiet --out sweep-auto.json
MATIC_KERNEL=scalar MATIC_EVAL_CHUNK=1 \
  "$MATIC" sweep --chips 2 --voltages 0.50,0.90 \
  --benchmarks inversek2j --scale 0.2 --epochs 0.3 \
  --threads 1 --quiet --out sweep-scalar.json
MATIC_KERNEL=lanes MATIC_EVAL_CHUNK=7 \
  "$MATIC" sweep --chips 2 --voltages 0.50,0.90 \
  --benchmarks inversek2j --scale 0.2 --epochs 0.3 \
  --threads 2 --quiet --out sweep-lanes.json
cmp sweep-auto.json sweep-scalar.json
cmp sweep-auto.json sweep-lanes.json
