#!/usr/bin/env bash
# The service contract end-to-end, through the real binary and a real
# socket: a report streamed out of the daemon is byte-identical to the
# batch `matic sweep` run of the same plan, a warm resubmit replays
# everything from the daemon's cache, cancel stops a job without
# poisoning the cache, and shutdown drains cleanly.
set -euo pipefail
MATIC=${MATIC:-./target/release/matic}

"$MATIC" serve --listen serve.sock --workers 2 \
  --cache-dir serve-cache 2> serve-stderr.txt &
SERVE_PID=$!
for i in $(seq 1 100); do [ -S serve.sock ] && break; sleep 0.1; done
[ -S serve.sock ]
# The batch reference bytes for the same plan.
"$MATIC" sweep --chips 2 --voltages 0.50,0.90 \
  --benchmarks inversek2j --scale 0.2 --epochs 0.3 \
  --threads 2 --quiet --out batch.json
# Submit job 1: the streamed report must be byte-identical.
"$MATIC" submit --socket serve.sock \
  --chips 2 --voltages 0.50,0.90 --benchmarks inversek2j \
  --scale 0.2 --epochs 0.3 --out served.json
cmp batch.json served.json
# Job 2, same plan: a warm resubmit replays from the daemon's cache.
"$MATIC" submit --socket serve.sock \
  --chips 2 --voltages 0.50,0.90 --benchmarks inversek2j \
  --scale 0.2 --epochs 0.3 --out served-warm.json 2> warm.txt
cat warm.txt
grep -q "8 hits, 0 deduped, 0 misses" warm.txt
cmp batch.json served-warm.json
# Synthetic fault-model jobs go through the same daemon: the streamed
# report must match the batch bytes on both axes.
"$MATIC" sweep --chips 2 --bers 0.001,0.004 \
  --benchmarks inversek2j --scale 0.2 --epochs 0.3 \
  --threads 2 --quiet --out batch-ber.json
"$MATIC" submit --socket serve.sock \
  --chips 2 --bers 0.001,0.004 --benchmarks inversek2j \
  --scale 0.2 --epochs 0.3 --out served-ber.json
cmp batch-ber.json served-ber.json
"$MATIC" sweep --chips 2 --clock-stress 0.4,0.8 \
  --benchmarks inversek2j --scale 0.2 --epochs 0.3 \
  --threads 2 --quiet --out batch-clock.json
"$MATIC" submit --socket serve.sock \
  --chips 2 --clock-stress 0.4,0.8 --benchmarks inversek2j \
  --scale 0.2 --epochs 0.3 --out served-clock.json
cmp batch-clock.json served-clock.json
"$MATIC" status --socket serve.sock
# Cancelling an unknown job is a structured error, not a hang.
! "$MATIC" cancel 999 --socket serve.sock
# Job 5: cancel it mid-flight, then resubmit — the resumed run replays
# the cancelled prefix and still matches batch bytes.
"$MATIC" submit --socket serve.sock \
  --chips 2 --voltages 0.46,0.50,0.55,0.60 --benchmarks inversek2j \
  --scale 0.5 --epochs 0.5 --seed 99 --out cancelled.json &
SUBMIT_PID=$!
sleep 1
"$MATIC" cancel 5 --socket serve.sock || true
wait $SUBMIT_PID || true
"$MATIC" submit --socket serve.sock \
  --chips 2 --voltages 0.46,0.50,0.55,0.60 --benchmarks inversek2j \
  --scale 0.5 --epochs 0.5 --seed 99 --out resumed.json
"$MATIC" sweep \
  --chips 2 --voltages 0.46,0.50,0.55,0.60 --benchmarks inversek2j \
  --scale 0.5 --epochs 0.5 --seed 99 --threads 2 --quiet \
  --out batch99.json
cmp batch99.json resumed.json
# Drain: the daemon acks, exits cleanly, and removes its socket.
"$MATIC" shutdown --socket serve.sock
wait $SERVE_PID
[ ! -e serve.sock ]
cat serve-stderr.txt
