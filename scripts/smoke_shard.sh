#!/usr/bin/env bash
# The distributed-determinism gate: a 3-daemon `matic shard-sweep` must
# merge to bytes identical to the single-process `matic sweep` — over
# Unix sockets, over the vendored HTTP/1.1 transport, and with one
# daemon SIGKILLed mid-run (its shard fails over to a survivor and the
# shared content-addressed cache replays whatever it had checkpointed).
#
# Everything lands under shard-smoke/ (reports, daemon logs, pids) so
# CI can upload the directory as an artifact when a cmp fails.
set -euo pipefail
MATIC=${MATIC:-./target/release/matic}

DIR=shard-smoke
rm -rf "$DIR"
mkdir -p "$DIR"

GRID=(--chips 4 --voltages 0.50,0.90 --benchmarks inversek2j
      --scale 0.2 --epochs 0.3 --seed 11)

start_daemon() { # name [extra serve args...]
  local name=$1; shift
  "$MATIC" serve --listen "$DIR/$name.sock" --workers 1 \
    --cache-dir "$DIR/cache" "$@" 2> "$DIR/$name.log" &
  echo $! > "$DIR/$name.pid"
}

start_daemon d0
start_daemon d1
start_daemon d2 --http 127.0.0.1:0
for f in "$DIR"/d0.sock "$DIR"/d1.sock "$DIR"/d2.sock "$DIR"/d2.sock.http; do
  for i in $(seq 1 100); do [ -e "$f" ] && break; sleep 0.1; done
  [ -e "$f" ]
done
HTTP=$(cat "$DIR/d2.sock.http")

# The single-process reference bytes (report + per-cell CSV).
"$MATIC" sweep "${GRID[@]}" --threads 2 --quiet \
  --out "$DIR/batch.json" --csv "$DIR/batch.csv"

# Unix-socket sharding: the merged report and CSV are cmp-identical.
"$MATIC" shard-sweep "${GRID[@]}" \
  --daemons "$DIR/d0.sock,$DIR/d1.sock,$DIR/d2.sock" \
  --out "$DIR/merged-unix.json" --csv "$DIR/merged-unix.csv"
cmp "$DIR/batch.json" "$DIR/merged-unix.json"
cmp "$DIR/batch.csv" "$DIR/merged-unix.csv"

# HTTP sharding: one daemon addressed over the remote transport, still
# three shards, still byte-identical (and warm: the daemons share the
# cache the Unix run just filled).
"$MATIC" shard-sweep "${GRID[@]}" \
  --daemons "$DIR/d0.sock,$DIR/d1.sock,http://$HTTP" --shards 3 \
  --out "$DIR/merged-http.json"
cmp "$DIR/batch.json" "$DIR/merged-http.json"

# Failover: a cold-seed run (nothing cached for seed 99) with one
# daemon SIGKILLed mid-run must still merge byte-identically. The
# full-scale mnist cells keep shard 0 busy on d0 for several seconds,
# so the kill below reliably lands mid-shard.
FAILGRID=(--chips 6 --voltages 0.50,0.90 --benchmarks mnist
          --scale 1.0 --epochs 1.0 --seed 99)
"$MATIC" sweep "${FAILGRID[@]}" --threads 2 --quiet --out "$DIR/batch99.json"
"$MATIC" shard-sweep "${FAILGRID[@]}" \
  --daemons "$DIR/d0.sock,$DIR/d1.sock,$DIR/d2.sock" --timeout-secs 30 \
  --out "$DIR/merged-failover.json" 2> "$DIR/failover.log" &
SHARD_PID=$!
sleep 1
kill -9 "$(cat "$DIR/d0.pid")"
wait "$SHARD_PID"
cat "$DIR/failover.log"
grep -q "retrying on" "$DIR/failover.log"
cmp "$DIR/batch99.json" "$DIR/merged-failover.json"

# Drain the survivors (d0 died above), one via HTTP.
"$MATIC" shutdown --socket "$DIR/d1.sock"
"$MATIC" shutdown --socket "http://$HTTP"
wait || true
echo "shard-smoke: every merge byte-identical to the single-process sweep"
