#!/usr/bin/env bash
# The extended-topology contract end-to-end, through the real binary: a
# conv-chain sweep must produce byte-identical reports cold, warm (from
# the persistent cache), served out of the daemon, and under the
# forced-scalar kernel tier — and the report must carry the v4 schema
# with the topology fingerprint while stock MLP sweeps stay on v3.
set -euo pipefail
MATIC=${MATIC:-./target/release/matic}

TOPO='10x10x1;conv3x2;pool2;dense10'

# Cold conv sweep, cache enabled.
"$MATIC" sweep --chips 2 --voltages 0.50,0.90 \
  --benchmarks mnist --topology "$TOPO" --scale 0.1 --epochs 0.2 \
  --cache-dir topo-cache --threads 2 --quiet --out topo-cold.json
grep -q '"matic.sweep-report/v4"' topo-cold.json
grep -q 'mnist@conv3x2-pool2-dense10' topo-cold.json
grep -q '"topologies"' topo-cold.json
# Warm re-run: every cell replays from the cache, bytes identical.
"$MATIC" sweep --chips 2 --voltages 0.50,0.90 \
  --benchmarks mnist --topology "$TOPO" --scale 0.1 --epochs 0.2 \
  --cache-dir topo-cache --threads 4 --out topo-warm.json \
  2> topo-warm-stderr.txt
cat topo-warm-stderr.txt
grep -q "cache: 8 hits, 0 misses" topo-warm-stderr.txt
cmp topo-cold.json topo-warm.json
# Forced-scalar leg: the kernel tier must not reach the bytes.
MATIC_KERNEL=scalar "$MATIC" sweep --chips 2 --voltages 0.50,0.90 \
  --benchmarks mnist --topology "$TOPO" --scale 0.1 --epochs 0.2 \
  --threads 1 --quiet --out topo-scalar.json
cmp topo-cold.json topo-scalar.json
# Served leg: the daemon streams the same bytes for the same spec.
"$MATIC" serve --listen topo.sock --workers 2 2> topo-serve-stderr.txt &
SERVE_PID=$!
for i in $(seq 1 100); do [ -S topo.sock ] && break; sleep 0.1; done
[ -S topo.sock ]
"$MATIC" submit --socket topo.sock \
  --chips 2 --voltages 0.50,0.90 --benchmarks mnist --topology "$TOPO" \
  --scale 0.1 --epochs 0.2 --out topo-served.json
cmp topo-cold.json topo-served.json
"$MATIC" shutdown --socket topo.sock
wait $SERVE_PID
# A malformed chain and a shape mismatch are structured CLI errors.
! "$MATIC" sweep --topology '10x10x1;convXx4' --quiet 2> topo-err.txt
grep -q -- '--topology' topo-err.txt
! "$MATIC" sweep --benchmarks bscholes --topology "$TOPO" \
  --scale 0.1 --epochs 0.2 --quiet 2> topo-io-err.txt
grep -q 'bscholes' topo-io-err.txt
# Stock MLP sweeps are untouched by all of this: still v3, no
# topologies field.
"$MATIC" sweep --chips 1 --voltages 0.90 --benchmarks inversek2j \
  --scale 0.1 --epochs 0.2 --threads 2 --quiet --out stock.json
grep -q '"matic.sweep-report/v3"' stock.json
! grep -q '"topologies"' stock.json
