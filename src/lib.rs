//! # MATIC — Learning Around Errors for Low-Voltage DNN Accelerators
//!
//! A faithful reproduction of *“MATIC: Learning Around Errors for Efficient
//! Low-Voltage Neural Network Accelerators”* (Kim et al., DATE 2018) as a
//! Rust workspace. This facade crate re-exports every subsystem:
//!
//! * [`fixed`] — Q-format fixed-point arithmetic (the SNNAC datapath).
//! * [`sram`] — Monte-Carlo 6T SRAM read-stability fault model, profiling,
//!   fault maps and temperature behaviour.
//! * [`nn`] — a FANN-equivalent MLP training substrate (forward/backward,
//!   SGD with momentum).
//! * [`datasets`] — the four paper benchmarks as synthetic generators
//!   (mnist-like digits, face detection, inverse kinematics, Black–Scholes).
//! * [`energy`] — voltage/frequency/energy models calibrated to the SNNAC
//!   test-chip measurements (Table II).
//! * [`core`] — the paper's contribution: memory-adaptive training (MAT)
//!   and in-situ synaptic canaries (Algorithm 1).
//! * [`snnac`] — a cycle-level simulator of the SNNAC 8-PE systolic
//!   accelerator, including an MSP430-inspired runtime microcontroller.
//! * [`harness`] — the parallel chip-population sweep engine behind the
//!   `matic` CLI: grids of {chips × voltages × benchmarks × training
//!   modes} with deterministic JSON/CSV reports.
//!
//! ## Quickstart
//!
//! ```
//! use matic::prelude::*;
//!
//! // Train a classifier with memory-adaptive training against a chip's
//! // profiled fault map at 0.50 V (28 % of bit-cells stuck).
//! let data = matic::datasets::mnist_like(30, 6, 7);
//! let spec = NetSpec::classifier(&[100, 32, 10]);
//! let mut chip = Chip::synthesize(ChipConfig::snnac(), 42);
//! let profile = chip.profile(0.50);
//! let model = MatTrainer::new(spec, MatConfig::quick()).train(&data.train, &profile);
//! // The deployed view applies the same stuck bits the hardware would.
//! let deployed = model.deploy(&profile);
//! let err = matic::nn::classification_error_percent(&deployed, &data.test);
//! assert!(err < 90.0); // far better than the 90 % chance floor
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use matic_core as core;
pub use matic_datasets as datasets;
pub use matic_energy as energy;
pub use matic_fixed as fixed;
pub use matic_harness as harness;
pub use matic_nn as nn;
pub use matic_snnac as snnac;
pub use matic_sram as sram;

/// Convenience re-exports of the most commonly used types.
///
/// Two unrelated `Scenario` types exist in the workspace, so the prelude
/// renames both to keep itself unambiguous:
///
/// * [`EnergyScenario`](matic_energy::Scenario) — a Table II operating
///   scenario (`HighPerf` / `EnOpt_split` / `EnOpt_joint`);
/// * [`SweepScenario`](matic_harness::Scenario) — a benchmark workload
///   pluggable into the sweep harness.
pub mod prelude {
    pub use matic_core::{
        CanaryController, CanarySet, DeployedModel, MatConfig, MatTrainer, TrainedModel,
    };
    pub use matic_datasets::{Dataset, Split};
    pub use matic_energy::{EnergyModel, OperatingPoint, Scenario as EnergyScenario};
    pub use matic_fixed::{Accumulator, Fx, QFormat};
    pub use matic_harness::{
        AccuracyBudget, EnergyReport, Scenario as SweepScenario, SweepPlan, SweepReport,
        TrainingMode,
    };
    pub use matic_nn::{Activation, Loss, Mlp, NetSpec, SgdConfig};
    pub use matic_snnac::{Chip, ChipConfig, Snnac};
    pub use matic_sram::{FaultMap, SramArray, SramConfig};
}
