//! `matic` — the reproduction's command-line interface.
//!
//! `matic sweep` runs a parallel chip-population sweep through
//! [`matic_harness`] and writes a deterministic JSON report (plus an
//! optional per-cell CSV). `matic energy` runs the same sweep (or reads
//! a previously written sweep report) and derives the accuracy–energy
//! analysis: Pareto frontiers per benchmark/mode and the Table II
//! minimum-energy operating-point selections under an accuracy budget.
//! `matic cache` inspects or clears the persistent sweep cache that
//! makes interrupted sweeps resumable. `matic list` shows the available
//! benchmarks and training modes.

use matic_harness::{
    AccuracyBudget, EnergyReport, ReusePolicy, SweepCache, SweepPlan, SweepReport, SweepRun,
    TrainingMode,
};
use std::path::Path;
use std::process::ExitCode;

/// Cache directory used when `--resume` is given without `--cache-dir`.
const DEFAULT_CACHE_DIR: &str = ".matic-cache";

/// Socket the serve-family commands use when `--socket`/`--listen` is
/// not given.
const DEFAULT_SOCKET: &str = ".matic-serve.sock";

const USAGE: &str = "\
matic — MATIC (DATE 2018) reproduction toolkit

USAGE:
    matic sweep [OPTIONS]    run a chip-population sweep
    matic energy [OPTIONS]   sweep (or load a sweep report) and derive the
                             accuracy–energy analysis (Table II / Fig. 10–11)
    matic serve [OPTIONS]    run the long-lived sweep service on a local socket
    matic submit [OPTIONS]   send a sweep (or --energy) job to the service,
                             stream its progress, and write the report
    matic status [OPTIONS]   list the service's jobs and their progress
    matic cancel ID [OPTS]   cancel a running job at the next cell boundary
    matic shutdown [OPTS]    drain the service and stop the daemon
    matic shard-sweep [OPTS] split a sweep into chip-range shards across
                             several daemons and merge the byte-identical report
    matic compare-models [OPTS]  sweep all three fault models at matched
                             stress and print the naive/MAT/MAT+canary table
    matic cache stats        show persistent sweep-cache contents
    matic cache clear        delete every cached cell result
    matic list               list built-in benchmarks and training modes
    matic help               show this message

SWEEP OPTIONS (matic sweep; also accepted by matic energy):
    --chips N           chip instances to synthesize        [default: 4]
    --voltages SPEC     SRAM voltages: lo:hi:steps grid or comma list
                        (e.g. 0.46:0.90:5 or 0.53,0.50,0.46) [default: 0.46:0.90:5]
    --bers SPEC         sweep the random-ber fault model instead of voltages:
                        Stutz-style i.i.d. bit flips over robust Q1.14 weight
                        words (not accepted by matic energy — no silicon)
    --clock-stress SPEC sweep the timing-error fault model instead: normalized
                        clock-period stress in [0,1]; overscaled MACs drop
                        their partial products (ThUnderVolt-style; not
                        accepted by matic energy)
    --benchmarks LIST   all | comma list of mnist,facedet,inversek2j,bscholes
                                                            [default: all]
    --topology DSL      override every benchmark's network with a layer chain:
                        `;`-separated stages — input (N or HxWxC), convKxF
                        (KxK kernel, F filters), poolW (WxW max-pool), denseN
                        (e.g. 10x10x1;conv3x4;pool2;dense10); input/output
                        widths must match the dataset [default: Table I MLPs]
    --modes LIST        comma list of naive,mat,mat-canary  [default: naive,mat]
    --scale X           dataset scale factor                [default: 0.5]
    --epochs X          epoch-budget multiplier             [default: 0.5]
    --seed N            root seed                           [default: 42]
    --threads N         worker threads                      [default: all cores]
    --no-reuse          strict one-model-per-point (disable superset reuse)
    --cache-dir PATH    persist per-cell results under PATH and replay any
                        cell whose content key already matches (resume)
    --resume            shorthand for --cache-dir .matic-cache
    --no-cache          disable the cache even if --cache-dir/--resume given
    --out PATH          JSON report path     [default: matic-sweep.json, or
                                              matic-energy.json for energy]
    --csv PATH          also write the per-cell (sweep) or per-scenario
                        (energy) table as CSV
    --quiet             suppress the summary table and all stderr progress
                        narration (errors still print)

SERVE OPTIONS (matic serve):
    --listen PATH       Unix socket to serve on      [default: .matic-serve.sock]
    --http ADDR         additionally serve the same protocol over HTTP/1.1 on
                        ADDR (host:port; port 0 picks one); the bound address
                        is published to <socket>.http
    --workers N         shared worker-pool threads   [default: all cores]
    --queue-depth N     bounded unit queue (backpressure) [default: 2x workers]
    --cache-dir PATH / --resume / --no-cache
                        persistent cell cache shared by every job
    --quiet             suppress daemon narration

CLIENT OPTIONS (matic submit/status/cancel/shutdown):
    --socket ADDR       daemon address: a socket path or http://host:port
                        (also --listen)           [default: .matic-serve.sock]
    matic submit additionally takes the sweep grid options above
    (--chips/--voltages/--bers/--benchmarks/--topology/--modes/--scale/
    --epochs/--seed/--no-reuse/--out/--quiet) plus:
    --energy            submit an energy job (voltage axis only)
    --budget-percent X / --budget-mse X   energy accuracy budgets
    Execution knobs (--threads, --cache-dir, --resume, --no-cache, --csv)
    are daemon-side and rejected by submit.

SHARD-SWEEP OPTIONS (matic shard-sweep; plus the sweep grid options above):
    --daemons LIST      comma list of daemon addresses: socket paths and/or
                        http://host:port URLs
    --spawn N           spawn N local daemons (sharing one scratch cache) for
                        this run instead, and shut them down afterwards
    --workers N         worker threads per spawned daemon [default: cores/N]
    --shards N          shard count               [default: one per daemon]
    --retries N         re-attempts per shard after a failure   [default: 2]
    --backoff-ms MS     base retry backoff, doubling per retry  [default: 250]
    --timeout-secs S    per-event read timeout, 0 waits forever [default: 60]
    --energy            derive the energy analysis from the merged sweep
    --budget-percent X / --budget-mse X   energy accuracy budgets
    --out/--csv/--quiet as for matic sweep; the merged report (and CSV) is
    byte-identical to the single-process `matic sweep` of the same grid.

COMPARE OPTIONS (matic compare-models):
    --voltage V         sram-voltage model stress point     [default: 0.50]
    --ber X             random-ber model stress point       [default: 0.002]
    --clock X           timing-error model stress point     [default: 0.60]
    plus the sweep options above except the axis flags
    (--voltages/--bers/--clock-stress/--modes are fixed by the comparison);
    writes matic-compare-models.json unless --out overrides it

ENERGY OPTIONS (matic energy only):
    --report PATH       analyze an existing sweep report instead of
                        sweeping (mutually exclusive with sweep options)
    --budget-percent X  accuracy-loss budget for classification
                        benchmarks, percentage points       [default: 2]
    --budget-mse X      accuracy-loss budget for regression
                        benchmarks, absolute MSE            [default: 0.02]

CACHE OPTIONS (matic cache stats|clear):
    --cache-dir PATH    cache location                      [default: .matic-cache]

Reports are byte-identical for every --threads value and for every cache
hit/miss mix, and contain no timestamps or host details: identical plans
give identical bytes — `matic energy` inherits the same guarantee because
its analysis is a pure function of the sweep report. Cells are
checkpointed atomically as they complete, so a killed sweep re-run with
--resume picks up where it died.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run = |result: Result<(), String>| match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    };
    match args.first().map(String::as_str) {
        Some("sweep") => run(run_sweep_command(&args[1..])),
        Some("energy") => run(run_energy_command(&args[1..])),
        Some("serve") => run(run_serve_command(&args[1..])),
        Some("submit") => run(run_submit_command(&args[1..])),
        Some("status") => run(run_status_command(&args[1..])),
        Some("cancel") => run(run_cancel_command(&args[1..])),
        Some("shutdown") => run(run_shutdown_command(&args[1..])),
        Some("shard-sweep") => run(run_shard_sweep_command(&args[1..])),
        Some("compare-models") => run(run_compare_command(&args[1..])),
        Some("cache") => run(run_cache_command(&args[1..])),
        Some("list") => {
            list();
            ExitCode::SUCCESS
        }
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown command `{other}`\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn list() {
    println!("benchmarks (Table I):");
    for s in matic_harness::builtin_scenarios() {
        let layers: Vec<String> = s.topology().layers.iter().map(|n| n.to_string()).collect();
        let metric = if s.is_classification() {
            "classification error %"
        } else {
            "mean squared error"
        };
        println!("  {:<12} {:<12} {metric}", s.name(), layers.join("-"));
    }
    println!("\ntraining modes:");
    println!("  naive        fault-oblivious baseline (quantization-aware)");
    println!("  mat          memory-adaptive training (paper §III-B)");
    println!("  mat-canary   MAT + in-situ canaries and runtime controller (§III-C)");
}

/// The options shared by `matic sweep` and `matic energy`: everything
/// that shapes the sweep itself plus the output knobs.
struct SweepArgs {
    chips: usize,
    voltages: Option<Vec<f64>>,
    bers: Option<Vec<f64>>,
    clock: Option<Vec<f64>>,
    benchmarks: String,
    topology: Option<String>,
    modes: Vec<TrainingMode>,
    scale: f64,
    epochs: f64,
    seed: u64,
    threads: Option<usize>,
    reuse: ReusePolicy,
    cache_dir: Option<String>,
    resume: bool,
    no_cache: bool,
    out: Option<String>,
    csv: Option<String>,
    quiet: bool,
    /// Whether any sweep-shaping option was explicitly given (used by
    /// `matic energy` to reject a conflicting `--report`).
    sweep_shaped: bool,
}

impl Default for SweepArgs {
    fn default() -> Self {
        SweepArgs {
            chips: 4,
            voltages: None,
            bers: None,
            clock: None,
            benchmarks: "all".to_string(),
            topology: None,
            modes: vec![TrainingMode::Naive, TrainingMode::Mat],
            scale: 0.5,
            epochs: 0.5,
            seed: 42,
            threads: None,
            reuse: ReusePolicy::SupersetMap,
            cache_dir: None,
            resume: false,
            no_cache: false,
            out: None,
            csv: None,
            quiet: false,
            sweep_shaped: false,
        }
    }
}

impl SweepArgs {
    /// Tries to consume `arg` (pulling values from `it`); returns
    /// `Ok(false)` when the flag is not a sweep option.
    fn try_parse(
        &mut self,
        arg: &str,
        it: &mut std::slice::Iter<'_, String>,
    ) -> Result<bool, String> {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        // Everything that only matters when a sweep actually runs —
        // grid shape *and* execution knobs (threads, cache). `matic
        // energy --report` rejects all of these rather than silently
        // ignoring them; only the output knobs (--out/--csv/--quiet)
        // compose with --report.
        let shaped = matches!(
            arg,
            "--chips"
                | "--voltages"
                | "--bers"
                | "--clock-stress"
                | "--benchmarks"
                | "--topology"
                | "--modes"
                | "--scale"
                | "--epochs"
                | "--seed"
                | "--no-reuse"
                | "--threads"
                | "--cache-dir"
                | "--resume"
                | "--no-cache"
        );
        match arg {
            "--chips" => self.chips = parse(&value("--chips")?, "--chips")?,
            "--voltages" => self.voltages = Some(parse_grid(&value("--voltages")?)?),
            "--bers" => self.bers = Some(parse_grid(&value("--bers")?)?),
            "--clock-stress" => self.clock = Some(parse_grid(&value("--clock-stress")?)?),
            "--benchmarks" => self.benchmarks = value("--benchmarks")?,
            "--topology" => {
                let dsl = value("--topology")?;
                // Parse eagerly so a malformed chain fails at the flag,
                // with the flag's name, not deep inside plan building.
                matic_nn::NetSpec::parse_topology(&dsl)
                    .map_err(|e| format!("--topology `{dsl}`: {e}"))?;
                self.topology = Some(dsl);
            }
            "--modes" => {
                self.modes = value("--modes")?
                    .split(',')
                    .map(|m| {
                        TrainingMode::from_name(m.trim())
                            .ok_or_else(|| format!("unknown mode `{m}`"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--scale" => self.scale = parse(&value("--scale")?, "--scale")?,
            "--epochs" => self.epochs = parse(&value("--epochs")?, "--epochs")?,
            "--seed" => self.seed = parse(&value("--seed")?, "--seed")?,
            "--threads" => self.threads = Some(parse_nonzero(&value("--threads")?, "--threads")?),
            "--no-reuse" => self.reuse = ReusePolicy::PerPoint,
            "--cache-dir" => self.cache_dir = Some(value("--cache-dir")?),
            "--resume" => self.resume = true,
            "--no-cache" => self.no_cache = true,
            "--out" => self.out = Some(value("--out")?),
            "--csv" => self.csv = Some(value("--csv")?),
            "--quiet" => self.quiet = true,
            _ => return Ok(false),
        }
        self.sweep_shaped |= shaped;
        Ok(true)
    }

    fn build_plan(&self) -> Result<SweepPlan, String> {
        let axes = [&self.voltages, &self.bers, &self.clock]
            .iter()
            .filter(|a| a.is_some())
            .count();
        if axes > 1 {
            return Err("--voltages, --bers and --clock-stress are mutually exclusive".into());
        }
        let mut builder = SweepPlan::builder()
            .chips(self.chips)
            .data_scale(self.scale)
            .epoch_scale(self.epochs)
            .seed(self.seed)
            .modes(&self.modes)
            .reuse(self.reuse);
        builder = match (&self.voltages, &self.bers, &self.clock) {
            (_, Some(r), _) => builder.bit_error_rates(r),
            (_, _, Some(c)) => builder.clock_stress(c),
            (Some(v), None, None) => builder.voltages(v),
            (None, None, None) => builder.voltage_grid(0.46, 0.90, 5),
        };
        for name in self.benchmarks.split(',') {
            builder = builder.benchmark(name.trim()).map_err(|e| e.to_string())?;
        }
        if let Some(dsl) = &self.topology {
            let topo = matic_nn::NetSpec::parse_topology(dsl)
                .map_err(|e| format!("--topology `{dsl}`: {e}"))?;
            builder = builder.topology(topo);
        }
        if let Some(n) = self.threads {
            builder = builder.threads(n);
        }
        builder.build().map_err(|e| e.to_string())
    }

    /// The cache directory the flags select, if any. The cache is
    /// enabled by --cache-dir or --resume (which defaults the location);
    /// --no-cache wins over both so scripts can force a cold recompute
    /// without unwinding their flags.
    fn cache_path(&self) -> Option<String> {
        resolve_cache(self.cache_dir.clone(), self.resume, self.no_cache)
    }

    /// Builds the plan, runs the sweep (with the selected cache), and
    /// narrates progress on stderr. Returns the run and its wall time.
    fn run(&self) -> Result<(SweepRun, std::time::Duration), String> {
        let plan = self.build_plan()?;
        let cache_path = self.cache_path();
        let cache = cache_path
            .as_ref()
            .map(|dir| SweepCache::open(dir).map_err(|e| format!("opening sweep cache {dir}: {e}")))
            .transpose()?;
        let workers = plan.threads.unwrap_or_else(rayon::current_num_threads);
        narrate(
            self.quiet,
            format_args!(
                "sweep: {} cells ({} chips x {} {} points x {} benchmarks x {} modes) on {} threads, plan {}",
                plan.cell_count(),
                plan.chips,
                plan.axis.points().len(),
                plan.axis.kind(),
                plan.scenarios.len(),
                plan.modes.len(),
                workers,
                plan.fingerprint(),
            ),
        );
        let start = std::time::Instant::now();
        let run = matic_harness::run_sweep_with_cache(&plan, cache.as_ref());
        let elapsed = start.elapsed();
        if let Some(dir) = &cache_path {
            narrate(
                self.quiet,
                format_args!(
                    "cache: {} hits, {} misses -> {dir}",
                    run.cache.hits, run.cache.misses
                ),
            );
        }
        Ok((run, elapsed))
    }
}

fn run_sweep_command(args: &[String]) -> Result<(), String> {
    let mut sweep = SweepArgs::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if !sweep.try_parse(arg, &mut it)? {
            return Err(format!("unknown option `{arg}` (see `matic help`)"));
        }
    }
    let (run, elapsed) = sweep.run()?;
    let report = run.report;
    let out = sweep.out.unwrap_or_else(|| "matic-sweep.json".to_string());

    matic_harness::write_atomic(Path::new(&out), &report.to_json_pretty())
        .map_err(|e| format!("writing {out}: {e}"))?;
    if let Some(path) = &sweep.csv {
        matic_harness::write_atomic(Path::new(path), &report.to_csv())
            .map_err(|e| format!("writing {path}: {e}"))?;
    }
    if !sweep.quiet {
        print_summary(&report);
    }
    narrate(
        sweep.quiet,
        format_args!(
            "sweep: {} cells in {:.1}s -> {out}{}",
            report.cells.len(),
            elapsed.as_secs_f64(),
            sweep.csv.map(|p| format!(" + {p}")).unwrap_or_default(),
        ),
    );
    Ok(())
}

/// `matic energy`: sweep (or load a report) and derive the
/// accuracy–energy analysis.
fn run_energy_command(args: &[String]) -> Result<(), String> {
    let mut sweep = SweepArgs::default();
    let mut source: Option<String> = None;
    let mut budget = AccuracyBudget::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--report" => source = Some(value("--report")?),
            "--budget-percent" => {
                budget.percent = parse(&value("--budget-percent")?, "--budget-percent")?;
            }
            "--budget-mse" => budget.mse = parse(&value("--budget-mse")?, "--budget-mse")?,
            other => {
                if !sweep.try_parse(other, &mut it)? {
                    return Err(format!("unknown option `{other}` (see `matic help`)"));
                }
            }
        }
    }
    if !budget.percent.is_finite() || !budget.mse.is_finite() {
        return Err("accuracy budgets must be finite numbers".into());
    }
    if sweep.bers.is_some() || sweep.clock.is_some() {
        return Err(
            "matic energy needs a voltage-axis sweep; the synthetic fault axes \
             have no silicon to meter (drop --bers/--clock-stress)"
                .into(),
        );
    }

    let report: SweepReport = match &source {
        Some(path) => {
            if sweep.sweep_shaped {
                return Err(
                    "--report analyzes an existing sweep, so sweep options have no effect; \
                     drop them (--chips/--voltages/--benchmarks/--threads/--cache-dir/...) \
                     or drop --report to sweep here"
                        .into(),
                );
            }
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            let report: SweepReport = serde_json::from_str(&text)
                .map_err(|e| format!("parsing sweep report {path}: {e}"))?;
            if report.schema != matic_harness::REPORT_SCHEMA {
                return Err(format!(
                    "sweep report {path} has schema `{}`, this binary expects `{}` \
                     (re-run the sweep with this version)",
                    report.schema,
                    matic_harness::REPORT_SCHEMA
                ));
            }
            report
        }
        None => sweep.run()?.0.report,
    };

    let energy = matic_harness::energy_report(&report, budget).map_err(|e| e.to_string())?;
    let out = sweep.out.unwrap_or_else(|| "matic-energy.json".to_string());
    matic_harness::write_atomic(Path::new(&out), &energy.to_json_pretty())
        .map_err(|e| format!("writing {out}: {e}"))?;
    if let Some(path) = &sweep.csv {
        matic_harness::write_atomic(Path::new(path), &energy.to_csv())
            .map_err(|e| format!("writing {path}: {e}"))?;
    }
    if !sweep.quiet {
        print_energy_summary(&energy);
    }
    narrate(
        sweep.quiet,
        format_args!(
            "energy: {} benchmark/mode analyses -> {out}{}",
            energy.benchmarks.len(),
            sweep.csv.map(|p| format!(" + {p}")).unwrap_or_default(),
        ),
    );
    Ok(())
}

/// `matic compare-models`: run all three fault models at a matched
/// stress point each and print naive/MAT/MAT+canary side by side —
/// canaries only apply to the voltage-scaled storage model, so the
/// synthetic models show an em dash there.
fn run_compare_command(args: &[String]) -> Result<(), String> {
    let mut sweep = SweepArgs::default();
    let (mut voltage, mut ber, mut clock) = (0.50f64, 0.002f64, 0.60f64);
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--voltage" => voltage = parse(&value("--voltage")?, "--voltage")?,
            "--ber" => ber = parse(&value("--ber")?, "--ber")?,
            "--clock" => clock = parse(&value("--clock")?, "--clock")?,
            "--voltages" | "--bers" | "--clock-stress" | "--modes" => {
                return Err(format!(
                    "compare-models fixes its own axes and modes; use \
                     --voltage/--ber/--clock for the per-model stress points \
                     (not {arg})"
                ));
            }
            other => {
                if !sweep.try_parse(other, &mut it)? {
                    return Err(format!("unknown option `{other}` (see `matic help`)"));
                }
            }
        }
    }
    let cache_path = sweep.cache_path();
    let cache = cache_path
        .as_ref()
        .map(|dir| SweepCache::open(dir).map_err(|e| format!("opening sweep cache {dir}: {e}")))
        .transpose()?;

    let build = |axis: &str| -> Result<SweepPlan, String> {
        let mut builder = SweepPlan::builder()
            .chips(sweep.chips)
            .data_scale(sweep.scale)
            .epoch_scale(sweep.epochs)
            .seed(sweep.seed)
            .reuse(sweep.reuse);
        builder = match axis {
            "voltage" => builder.voltages(&[voltage]).modes(&[
                TrainingMode::Naive,
                TrainingMode::Mat,
                TrainingMode::MatCanary,
            ]),
            "ber" => builder
                .bit_error_rates(&[ber])
                .modes(&[TrainingMode::Naive, TrainingMode::Mat]),
            "clock" => builder
                .clock_stress(&[clock])
                .modes(&[TrainingMode::Naive, TrainingMode::Mat]),
            _ => unreachable!("three fixed axes"),
        };
        for name in sweep.benchmarks.split(',') {
            builder = builder.benchmark(name.trim()).map_err(|e| e.to_string())?;
        }
        if let Some(n) = sweep.threads {
            builder = builder.threads(n);
        }
        builder.build().map_err(|e| e.to_string())
    };

    let mut runs: Vec<(f64, SweepReport)> = Vec::new();
    for axis in ["voltage", "ber", "clock"] {
        let plan = build(axis)?;
        narrate(
            sweep.quiet,
            format_args!(
                "compare: {} at {} {} ({} cells), plan {}",
                plan.model.name(),
                plan.axis.points()[0],
                plan.axis.kind(),
                plan.cell_count(),
                plan.fingerprint(),
            ),
        );
        let stress = plan.axis.points()[0];
        let run = matic_harness::run_sweep_with_cache(&plan, cache.as_ref());
        runs.push((stress, run.report));
    }

    if !sweep.quiet {
        print_compare_table(&runs);
    }
    let out = sweep
        .out
        .clone()
        .unwrap_or_else(|| "matic-compare-models.json".to_string());
    let doc = compare_models_json(&runs);
    matic_harness::write_atomic(
        Path::new(&out),
        &serde_json::to_string_pretty(&doc).map_err(|e| format!("serializing report: {e}"))?,
    )
    .map_err(|e| format!("writing {out}: {e}"))?;
    narrate(
        sweep.quiet,
        format_args!("compare: 3 fault models -> {out}"),
    );
    Ok(())
}

/// One comparison row per (model, benchmark): the three training modes'
/// mean errors at the model's stress point.
fn print_compare_table(runs: &[(f64, SweepReport)]) {
    println!(
        "{:>12} | {:>11} | {:>8} | {:>11} | {:>11} | {:>11}",
        "fault model", "benchmark", "stress", "naive err", "mat err", "mat-canary"
    );
    println!("{:-<78}", "");
    for (stress, report) in runs {
        for scenario in &report.plan.scenarios {
            let err = |mode: &str| {
                report
                    .points
                    .iter()
                    .find(|p| p.mode == mode && &p.scenario == scenario)
                    .map(|p| format!("{:.4}", p.error.mean))
                    .unwrap_or_else(|| "—".into())
            };
            println!(
                "{:>12} | {:>11} | {:>8.3} | {:>11} | {:>11} | {:>11}",
                report.plan.fault_model,
                scenario,
                stress,
                err("naive"),
                err("mat"),
                err("mat-canary"),
            );
        }
    }
}

/// The machine-readable comparison: per model, the stress point and the
/// per-benchmark/mode point summaries.
fn compare_models_json(runs: &[(f64, SweepReport)]) -> serde_json::Value {
    use serde_json::Value;
    let models: Vec<Value> = runs
        .iter()
        .map(|(stress, report)| {
            let points: Vec<Value> = report
                .points
                .iter()
                .map(|p| {
                    Value::Map(vec![
                        ("scenario".into(), Value::Str(p.scenario.clone())),
                        ("mode".into(), Value::Str(p.mode.clone())),
                        ("error_mean".into(), Value::F64(p.error.mean)),
                        ("error_std".into(), Value::F64(p.error.std_dev)),
                        ("fail_rate".into(), Value::F64(p.fail_rate)),
                    ])
                })
                .collect();
            Value::Map(vec![
                ("model".into(), Value::Str(report.plan.fault_model.clone())),
                (
                    "stress_kind".into(),
                    Value::Str(report.plan.stress_kind.clone()),
                ),
                ("stress".into(), Value::F64(*stress)),
                ("points".into(), Value::Seq(points)),
            ])
        })
        .collect();
    serde_json::Value::Map(vec![
        (
            "schema".into(),
            serde_json::Value::Str("matic.compare-models/v1".into()),
        ),
        ("models".into(), serde_json::Value::Seq(models)),
    ])
}

/// Cache-path resolution shared by `serve` (same precedence as the
/// sweep flags: --no-cache > --cache-dir > --resume default).
fn resolve_cache(cache_dir: Option<String>, resume: bool, no_cache: bool) -> Option<String> {
    match (cache_dir, resume) {
        _ if no_cache => None,
        (Some(dir), _) => Some(dir),
        (None, true) => Some(DEFAULT_CACHE_DIR.to_string()),
        (None, false) => None,
    }
}

/// `matic serve`: run the long-lived sweep service until a shutdown
/// request drains it.
fn run_serve_command(args: &[String]) -> Result<(), String> {
    let mut socket = DEFAULT_SOCKET.to_string();
    let mut http: Option<String> = None;
    let mut workers = rayon::current_num_threads();
    let mut queue_depth: Option<usize> = None;
    let mut cache_dir: Option<String> = None;
    let (mut resume, mut no_cache, mut quiet) = (false, false, false);
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--listen" | "--socket" => socket = value(arg)?,
            "--http" => http = Some(value("--http")?),
            "--workers" => workers = parse_nonzero(&value("--workers")?, "--workers")?,
            "--queue-depth" => {
                queue_depth = Some(parse_nonzero(&value("--queue-depth")?, "--queue-depth")?);
            }
            "--cache-dir" => cache_dir = Some(value("--cache-dir")?),
            "--resume" => resume = true,
            "--no-cache" => no_cache = true,
            "--quiet" => quiet = true,
            other => return Err(format!("unknown option `{other}` (see `matic help`)")),
        }
    }
    let cfg = matic_serve::ServeConfig {
        socket: socket.into(),
        workers,
        cache_dir: resolve_cache(cache_dir, resume, no_cache).map(Into::into),
        queue_depth: queue_depth.unwrap_or(workers * 2),
        quiet,
        http,
    };
    matic_serve::serve(cfg)
}

/// The wire job a parsed sweep-argument set describes (shared by
/// `matic submit` and `matic shard-sweep`).
fn job_spec(sweep: &SweepArgs, energy: bool, budget: AccuracyBudget) -> matic_serve::JobSpec {
    matic_serve::JobSpec {
        kind: if energy {
            matic_serve::JobKind::Energy
        } else {
            matic_serve::JobKind::Sweep
        },
        chips: sweep.chips,
        voltages: sweep.voltages.clone(),
        bers: sweep.bers.clone(),
        clock: sweep.clock.clone(),
        benchmarks: sweep
            .benchmarks
            .split(',')
            .map(|b| b.trim().to_string())
            .collect(),
        modes: sweep.modes.iter().map(|m| m.name().to_string()).collect(),
        data_scale: sweep.scale,
        epoch_scale: sweep.epochs,
        seed: sweep.seed,
        no_reuse: matches!(sweep.reuse, ReusePolicy::PerPoint),
        budget_percent: budget.percent,
        budget_mse: budget.mse,
        chip_range: None,
        topology: sweep.topology.clone(),
    }
}

/// `matic submit`: send one job to the service, stream its progress,
/// and write the report the daemon streams back.
fn run_submit_command(args: &[String]) -> Result<(), String> {
    let mut sweep = SweepArgs::default();
    let mut socket = DEFAULT_SOCKET.to_string();
    let mut energy = false;
    let mut budget = AccuracyBudget::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--socket" | "--listen" => socket = value(arg)?,
            "--energy" => energy = true,
            "--budget-percent" => {
                budget.percent = parse(&value("--budget-percent")?, "--budget-percent")?;
            }
            "--budget-mse" => budget.mse = parse(&value("--budget-mse")?, "--budget-mse")?,
            other => {
                if !sweep.try_parse(other, &mut it)? {
                    return Err(format!("unknown option `{other}` (see `matic help`)"));
                }
            }
        }
    }
    if sweep.threads.is_some() || sweep.cache_dir.is_some() || sweep.resume || sweep.no_cache {
        return Err(
            "--threads/--cache-dir/--resume/--no-cache are daemon-side execution knobs; \
             set them on `matic serve`, not on submit"
                .into(),
        );
    }
    if sweep.csv.is_some() {
        return Err("submit streams the JSON report only; use `matic sweep --csv` locally".into());
    }
    let spec = job_spec(&sweep, energy, budget);
    let quiet = sweep.quiet;
    let endpoint = matic_serve::Endpoint::parse(&socket);
    let outcome = matic_serve::client::submit(&endpoint, &spec, |event| match event {
        matic_serve::Event::Accepted { id, cells_total } => {
            narrate(
                quiet,
                format_args!("submit: job {id} accepted ({cells_total} cells)"),
            );
        }
        matic_serve::Event::Progress {
            id,
            done,
            total,
            hits,
            deduped,
            misses,
        } => {
            narrate(
                quiet,
                format_args!(
                    "submit: job {id} {done}/{total} cells \
                     ({hits} hits, {deduped} deduped, {misses} misses)"
                ),
            );
        }
        _ => {}
    })?;
    match outcome {
        matic_serve::Event::Done {
            id,
            report,
            hits,
            deduped,
            misses,
        } => {
            let out = sweep.out.unwrap_or_else(|| {
                if energy {
                    "matic-energy.json".to_string()
                } else {
                    "matic-sweep.json".to_string()
                }
            });
            matic_harness::write_atomic(Path::new(&out), &report)
                .map_err(|e| format!("writing {out}: {e}"))?;
            narrate(
                quiet,
                format_args!(
                    "submit: job {id} done -> {out} ({hits} hits, {deduped} deduped, {misses} misses)"
                ),
            );
            Ok(())
        }
        matic_serve::Event::Cancelled {
            id,
            cells_done,
            cells_total,
        } => Err(format!(
            "job {id} was cancelled after {cells_done}/{cells_total} cells \
             (finished cells are checkpointed; resubmit to resume)"
        )),
        matic_serve::Event::Rejected { reason } => Err(format!("submission rejected: {reason}")),
        matic_serve::Event::Failed { id, reason } => Err(format!("job {id} failed: {reason}")),
        other => Err(format!("unexpected terminal event: {other:?}")),
    }
}

/// Parses the one option every client command shares: the daemon
/// address (a Unix socket path or an `http://host:port` URL).
fn parse_socket_only(args: &[String], command: &str) -> Result<matic_serve::Endpoint, String> {
    let mut socket = DEFAULT_SOCKET.to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" | "--listen" => {
                socket = it
                    .next()
                    .cloned()
                    .ok_or_else(|| format!("{arg} needs a value"))?;
            }
            other => return Err(format!("unknown option `{other}` for matic {command}")),
        }
    }
    Ok(matic_serve::Endpoint::parse(&socket))
}

/// `matic status`: one line per job the daemon knows about.
fn run_status_command(args: &[String]) -> Result<(), String> {
    let endpoint = parse_socket_only(args, "status")?;
    match matic_serve::client::roundtrip(&endpoint, &matic_serve::Request::Status)? {
        matic_serve::Event::Status { jobs } => {
            if jobs.is_empty() {
                println!("no jobs");
                return Ok(());
            }
            println!(
                "{:>4} | {:>9} | {:>6} | {:>11} | {:>6} | {:>7} | {:>6}",
                "id", "phase", "kind", "cells", "hits", "deduped", "misses"
            );
            for j in jobs {
                println!(
                    "{:>4} | {:>9} | {:>6} | {:>5}/{:<5} | {:>6} | {:>7} | {:>6}",
                    j.id,
                    j.phase,
                    match j.kind {
                        matic_serve::JobKind::Sweep => "sweep",
                        matic_serve::JobKind::Energy => "energy",
                    },
                    j.cells_done,
                    j.cells_total,
                    j.hits,
                    j.deduped,
                    j.misses,
                );
            }
            Ok(())
        }
        matic_serve::Event::Error { reason } => Err(reason),
        other => Err(format!("unexpected status answer: {other:?}")),
    }
}

/// `matic cancel ID`: request a cooperative stop at the next cell
/// boundary.
fn run_cancel_command(args: &[String]) -> Result<(), String> {
    let id: u64 = match args.first() {
        Some(first) if !first.starts_with("--") => parse(first, "job id")?,
        _ => return Err("cancel needs a job id: matic cancel ID [--socket PATH]".into()),
    };
    let endpoint = parse_socket_only(&args[1..], "cancel")?;
    match matic_serve::client::roundtrip(&endpoint, &matic_serve::Request::Cancel(id))? {
        matic_serve::Event::CancelOk { id, phase } => {
            println!("job {id}: cancel requested (was {phase})");
            Ok(())
        }
        matic_serve::Event::Error { reason } => Err(reason),
        other => Err(format!("unexpected cancel answer: {other:?}")),
    }
}

/// `matic shutdown`: drain in-flight cells and stop the daemon.
fn run_shutdown_command(args: &[String]) -> Result<(), String> {
    let endpoint = parse_socket_only(args, "shutdown")?;
    match matic_serve::client::roundtrip(&endpoint, &matic_serve::Request::Shutdown)? {
        matic_serve::Event::ShutdownOk { jobs_drained } => {
            println!("daemon drained ({jobs_drained} live jobs stopped) and exiting");
            Ok(())
        }
        matic_serve::Event::Error { reason } => Err(reason),
        other => Err(format!("unexpected shutdown answer: {other:?}")),
    }
}

/// A scratch cluster of `matic serve` children backing one
/// `shard-sweep --spawn` run: unique sockets in a temp dir, one shared
/// content-addressed cache, drained and removed when the merge lands.
struct SpawnedCluster {
    dir: std::path::PathBuf,
    sockets: Vec<std::path::PathBuf>,
    children: Vec<std::process::Child>,
}

impl SpawnedCluster {
    fn launch(
        n: usize,
        workers: Option<usize>,
        cache_dir: Option<String>,
        no_cache: bool,
        quiet: bool,
    ) -> Result<SpawnedCluster, String> {
        let exe = std::env::current_exe().map_err(|e| format!("locating the matic binary: {e}"))?;
        let dir = std::env::temp_dir().join(format!("matic-shard-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("creating scratch dir {}: {e}", dir.display()))?;
        // The shared cache is what makes failover cheap: cells a dying
        // daemon checkpointed replay on the survivor instead of
        // recomputing. --no-cache turns that off for cold-timing runs.
        let cache = (!no_cache)
            .then(|| cache_dir.unwrap_or_else(|| dir.join("cache").display().to_string()));
        let workers = workers.unwrap_or_else(|| (rayon::current_num_threads() / n).max(1));
        let mut cluster = SpawnedCluster {
            dir: dir.clone(),
            sockets: Vec::new(),
            children: Vec::new(),
        };
        for i in 0..n {
            let socket = dir.join(format!("d{i}.sock"));
            let mut cmd = std::process::Command::new(&exe);
            cmd.arg("serve")
                .arg("--listen")
                .arg(&socket)
                .arg("--workers")
                .arg(workers.to_string())
                .arg("--quiet");
            if let Some(cache) = &cache {
                cmd.arg("--cache-dir").arg(cache);
            }
            match cmd.spawn() {
                Ok(child) => {
                    cluster.children.push(child);
                    cluster.sockets.push(socket);
                }
                Err(e) => {
                    cluster.teardown(quiet);
                    return Err(format!("spawning daemon {i}: {e}"));
                }
            }
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        for socket in &cluster.sockets {
            while !socket.exists() {
                if std::time::Instant::now() >= deadline {
                    let socket = socket.display().to_string();
                    cluster.teardown(quiet);
                    return Err(format!("spawned daemon never bound {socket}"));
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        }
        narrate(
            quiet,
            format_args!(
                "shard-sweep: spawned {n} daemons x {workers} workers under {}",
                dir.display()
            ),
        );
        Ok(cluster)
    }

    fn endpoints(&self) -> Vec<matic_serve::Endpoint> {
        self.sockets
            .iter()
            .map(matic_serve::Endpoint::unix)
            .collect()
    }

    /// Drains every daemon, reaps the children (killing any that
    /// ignores the drain), and removes the scratch dir. A user-supplied
    /// --cache-dir lives outside the scratch dir and survives.
    fn teardown(mut self, quiet: bool) {
        for socket in &self.sockets {
            let _ = matic_serve::client::roundtrip(
                &matic_serve::Endpoint::unix(socket),
                &matic_serve::Request::Shutdown,
            );
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        for child in &mut self.children {
            loop {
                match child.try_wait() {
                    Ok(Some(_)) | Err(_) => break,
                    Ok(None) if std::time::Instant::now() >= deadline => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                    Ok(None) => std::thread::sleep(std::time::Duration::from_millis(25)),
                }
            }
        }
        narrate(quiet, format_args!("shard-sweep: cluster drained"));
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// `matic shard-sweep`: split one sweep into chip-range shards, farm
/// them out to several daemons, and merge the byte-identical report.
fn run_shard_sweep_command(args: &[String]) -> Result<(), String> {
    let mut sweep = SweepArgs::default();
    let mut daemons: Vec<String> = Vec::new();
    let mut spawn: Option<usize> = None;
    let mut workers: Option<usize> = None;
    let mut shards: Option<usize> = None;
    let mut retries: Option<usize> = None;
    let mut backoff_ms: Option<u64> = None;
    let mut timeout_secs: Option<u64> = None;
    let mut energy = false;
    let mut budget = AccuracyBudget::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--daemons" => {
                daemons = value("--daemons")?
                    .split(',')
                    .map(|d| d.trim().to_string())
                    .filter(|d| !d.is_empty())
                    .collect();
            }
            "--spawn" => spawn = Some(parse_nonzero(&value("--spawn")?, "--spawn")?),
            "--workers" => workers = Some(parse_nonzero(&value("--workers")?, "--workers")?),
            "--shards" => shards = Some(parse_nonzero(&value("--shards")?, "--shards")?),
            "--retries" => retries = Some(parse(&value("--retries")?, "--retries")?),
            "--backoff-ms" => backoff_ms = Some(parse(&value("--backoff-ms")?, "--backoff-ms")?),
            "--timeout-secs" => {
                timeout_secs = Some(parse(&value("--timeout-secs")?, "--timeout-secs")?);
            }
            "--energy" => energy = true,
            "--budget-percent" => {
                budget.percent = parse(&value("--budget-percent")?, "--budget-percent")?;
            }
            "--budget-mse" => budget.mse = parse(&value("--budget-mse")?, "--budget-mse")?,
            other => {
                if !sweep.try_parse(other, &mut it)? {
                    return Err(format!("unknown option `{other}` (see `matic help`)"));
                }
            }
        }
    }
    if sweep.threads.is_some() {
        return Err(
            "--threads is a daemon-side knob; use --workers for spawned daemons \
             or set it on each `matic serve`"
                .into(),
        );
    }
    match (daemons.is_empty(), spawn) {
        (false, Some(_)) => return Err("--daemons and --spawn are mutually exclusive".into()),
        (true, None) => return Err("shard-sweep needs daemons: --daemons LIST or --spawn N".into()),
        _ => {}
    }
    if spawn.is_none() {
        if sweep.cache_dir.is_some() || sweep.resume || sweep.no_cache {
            return Err(
                "--cache-dir/--resume/--no-cache configure spawned daemons; with \
                 --daemons the cache belongs to each `matic serve`"
                    .into(),
            );
        }
        if workers.is_some() {
            return Err(
                "--workers sizes spawned daemons; with --daemons set it on each \
                 `matic serve`"
                    .into(),
            );
        }
    }

    let spec = job_spec(&sweep, energy, budget);
    let quiet = sweep.quiet;
    let mut cluster: Option<SpawnedCluster> = None;
    let endpoints: Vec<matic_serve::Endpoint> = match spawn {
        Some(n) => {
            let c = SpawnedCluster::launch(n, workers, sweep.cache_path(), sweep.no_cache, quiet)?;
            let eps = c.endpoints();
            cluster = Some(c);
            eps
        }
        None => daemons
            .iter()
            .map(|d| matic_serve::Endpoint::parse(d))
            .collect(),
    };

    let mut cfg = matic_serve::ShardSweepConfig::new(endpoints);
    cfg.shards = shards;
    if let Some(n) = retries {
        cfg.retries = n;
    }
    if let Some(ms) = backoff_ms {
        cfg.backoff = std::time::Duration::from_millis(ms);
    }
    if let Some(secs) = timeout_secs {
        cfg.timeout = (secs > 0).then(|| std::time::Duration::from_secs(secs));
    }

    let start = std::time::Instant::now();
    let result = matic_serve::shard_sweep(&spec, &cfg, &|progress| match progress {
        matic_serve::ShardProgress::Event {
            shard,
            endpoint,
            event,
        } => match event {
            matic_serve::Event::Accepted { id, cells_total } => narrate(
                quiet,
                format_args!(
                    "shard {shard}: job {id} accepted on {endpoint} ({cells_total} cells)"
                ),
            ),
            matic_serve::Event::Progress {
                id, done, total, ..
            } => narrate(
                quiet,
                format_args!("shard {shard}: job {id} {done}/{total} cells on {endpoint}"),
            ),
            _ => {}
        },
        matic_serve::ShardProgress::Failover {
            shard,
            from,
            to,
            reason,
            delay,
        } => narrate(
            quiet,
            format_args!("shard {shard}: {from} failed ({reason}); retrying on {to} in {delay:?}"),
        ),
    });
    if let Some(cluster) = cluster {
        cluster.teardown(quiet);
    }
    let outcome = result?;
    let elapsed = start.elapsed();

    let out = sweep.out.clone().unwrap_or_else(|| {
        if energy {
            "matic-energy.json".to_string()
        } else {
            "matic-sweep.json".to_string()
        }
    });
    matic_harness::write_atomic(Path::new(&out), &outcome.report)
        .map_err(|e| format!("writing {out}: {e}"))?;
    if let Some(path) = &sweep.csv {
        // The merged run is local, so (unlike submit) the CSV views are
        // available — and byte-identical to the single-process ones.
        let csv = if energy {
            matic_harness::energy_report(&outcome.run.report, budget)
                .map_err(|e| e.to_string())?
                .to_csv()
        } else {
            outcome.run.report.to_csv()
        };
        matic_harness::write_atomic(Path::new(path), &csv)
            .map_err(|e| format!("writing {path}: {e}"))?;
    }
    narrate(
        quiet,
        format_args!(
            "shard-sweep: {} shards, {} failovers, {} hits, {} deduped, {} misses \
             in {:.1}s -> {out}{}",
            outcome.shards,
            outcome.failovers,
            outcome.hits,
            outcome.deduped,
            outcome.misses,
            elapsed.as_secs_f64(),
            sweep
                .csv
                .as_ref()
                .map(|p| format!(" + {p}"))
                .unwrap_or_default(),
        ),
    );
    Ok(())
}

/// `matic cache stats|clear [--cache-dir PATH]`.
fn run_cache_command(args: &[String]) -> Result<(), String> {
    let action = args
        .first()
        .map(String::as_str)
        .ok_or("cache needs an action: stats or clear")?;
    let mut dir = DEFAULT_CACHE_DIR.to_string();
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cache-dir" => {
                dir = it
                    .next()
                    .cloned()
                    .ok_or_else(|| "--cache-dir needs a value".to_string())?;
            }
            other => return Err(format!("unknown option `{other}` (see `matic help`)")),
        }
    }
    // Inspection/maintenance must not conjure a cache out of a typo'd
    // path (or mutate anything on a typo'd action): validate everything
    // before SweepCache::open, which mkdir-s. Only `sweep` creates.
    if !matches!(action, "stats" | "clear") {
        return Err(format!("unknown cache action `{action}` (stats or clear)"));
    }
    if !Path::new(&dir).join("cells").is_dir() {
        return Err(format!(
            "no sweep cache at {dir} (a sweep with --cache-dir/--resume creates one)"
        ));
    }
    let cache = SweepCache::open(&dir).map_err(|e| format!("opening sweep cache {dir}: {e}"))?;
    match action {
        "stats" => {
            let stats = cache
                .stats()
                .map_err(|e| format!("reading cache {dir}: {e}"))?;
            println!("cache {dir}: {} cells, {} bytes", stats.cells, stats.bytes);
            Ok(())
        }
        "clear" => {
            let removed = cache
                .clear()
                .map_err(|e| format!("clearing cache {dir}: {e}"))?;
            println!("cache {dir}: removed {removed} cells");
            Ok(())
        }
        _ => unreachable!("action validated above"),
    }
}

fn print_summary(report: &SweepReport) {
    println!(
        "{:>11} | {:>10} | {:>8} | {:>11} | {:>9} | {:>9} | {:>9}",
        "benchmark",
        "mode",
        report.plan.stress_kind.as_str(),
        "mean err",
        "std",
        "fail rate",
        "mean pJ"
    );
    println!("{:-<84}", "");
    for p in &report.points {
        println!(
            "{:>11} | {:>10} | {:>8.3} | {:>11.4} | {:>9.4} | {:>8.1}% | {:>9}",
            p.scenario,
            p.mode,
            p.stress,
            p.error.mean,
            p.error.std_dev,
            p.fail_rate * 100.0,
            p.mean_energy_pj
                .map(|e| format!("{e:.1}"))
                .unwrap_or_else(|| "-".into()),
        );
    }
}

fn print_energy_summary(energy: &EnergyReport) {
    println!(
        "{:>11} | {:>10} | {:>11} | {:>6} | {:>9} | {:>11} | {:>9} | {:>11}",
        "benchmark", "mode", "scenario", "Vsram", "pJ/cycle", "base pJ/cy", "reduction", "mean err"
    );
    println!("{:-<98}", "");
    for b in &energy.benchmarks {
        for outcome in &b.scenarios {
            match &outcome.selection {
                Some(s) => println!(
                    "{:>11} | {:>10} | {:>11} | {:>6.2} | {:>9.2} | {:>11.2} | {:>8.2}x | {:>11.4}",
                    b.benchmark,
                    b.mode,
                    outcome.scenario,
                    s.v_sram,
                    s.logic_pj_per_cycle + s.sram_pj_per_cycle,
                    s.baseline_pj_per_cycle,
                    s.reduction,
                    s.mean_error,
                ),
                None => println!(
                    "{:>11} | {:>10} | {:>11} | {:>6} | {:>9} | {:>11} | {:>9} | {:>11}",
                    b.benchmark,
                    b.mode,
                    outcome.scenario,
                    "-",
                    "-",
                    "-",
                    "-",
                    no_selection_reason(&outcome.scenario, &b.tradeoff),
                ),
            }
        }
    }
}

/// Why a Table II scenario selected nothing: every swept point below its
/// SRAM floor, points above the floor all over the accuracy budget, or —
/// the EnOpt_joint corner — feasible points whose shared rail sits below
/// the delay model's threshold and cannot clock. The JSON report carries
/// the per-point flags; this is just the summary-table hint.
fn no_selection_reason(scenario: &str, tradeoff: &[matic_harness::TradeoffPoint]) -> &'static str {
    let floor = matic_energy::Scenario::ALL
        .iter()
        .find(|s| s.name() == scenario)
        .map(|s| s.sram_floor())
        .unwrap_or(0.0);
    if tradeoff.iter().all(|p| p.v_sram < floor) {
        "below floor"
    } else if tradeoff.iter().any(|p| p.feasible && p.v_sram >= floor) {
        // A feasible, above-floor point existed yet nothing was selected:
        // the only remaining filter is the scenario's clock.
        "unclockable"
    } else {
        "over budget"
    }
}

fn parse<T: std::str::FromStr>(s: &str, name: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("invalid value `{s}` for {name}"))
}

/// Parses a worker/thread count, rejecting `0` up front: the rayon shim
/// reads `num_threads(0)` as "automatic", so a literal `--threads 0`
/// would silently mean "all cores" instead of erroring.
fn parse_nonzero(s: &str, name: &str) -> Result<usize, String> {
    let n: usize = parse(s, name)?;
    if n == 0 {
        return Err(format!(
            "{name} must be at least 1 (omit {name} to use all cores)"
        ));
    }
    Ok(n)
}

/// The one choke point for stderr progress narration: `--quiet`
/// silences every line that goes through here, while errors (which
/// never do) keep printing.
fn narrate(quiet: bool, msg: std::fmt::Arguments<'_>) {
    if !quiet {
        eprintln!("{msg}");
    }
}

/// Parses `lo:hi:steps` (inclusive linear grid) or a comma-separated
/// list. Every value must be finite (`f64::from_str` happily accepts
/// `nan`/`inf`, which would otherwise reach the plan builder), a grid
/// must have `lo <= hi`, and a single-step grid can only cover a
/// degenerate `lo == hi` range.
fn parse_grid(spec: &str) -> Result<Vec<f64>, String> {
    let finite = |v: f64, what: &str| {
        if v.is_finite() {
            Ok(v)
        } else {
            Err(format!("{what} in `{spec}` must be a finite number"))
        }
    };
    if spec.contains(':') {
        let parts: Vec<&str> = spec.split(':').collect();
        if parts.len() != 3 {
            return Err(format!("grid `{spec}` must be lo:hi:steps"));
        }
        let lo = finite(parse(parts[0], "grid lo")?, "grid lo")?;
        let hi = finite(parse(parts[1], "grid hi")?, "grid hi")?;
        let steps: usize = parse(parts[2], "grid steps")?;
        if steps == 0 {
            return Err("grid needs at least one step".into());
        }
        if lo > hi {
            return Err(format!(
                "grid `{spec}` is reversed (lo > hi); write lo:hi:steps with lo <= hi"
            ));
        }
        if steps == 1 && lo != hi {
            return Err(format!(
                "grid `{spec}` has one step but lo != hi, which would silently drop hi; \
                 use steps >= 2 (or lo == hi for a single point)"
            ));
        }
        Ok(matic_harness::linspace(lo, hi, steps))
    } else {
        spec.split(',')
            .map(|v| finite(parse(v.trim(), "grid value")?, "grid value"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_grid_accepts_lists_and_grids() {
        assert_eq!(parse_grid("0.5,0.9").unwrap(), vec![0.5, 0.9]);
        assert_eq!(parse_grid(" 0.5 , 0.9 ").unwrap(), vec![0.5, 0.9]);
        let grid = parse_grid("0.5:0.9:3").unwrap();
        assert_eq!(grid, vec![0.5, 0.7, 0.9]);
        // A degenerate single-point grid is fine when lo == hi.
        assert_eq!(parse_grid("0.5:0.5:1").unwrap(), vec![0.5]);
    }

    #[test]
    fn parse_grid_rejects_non_finite_values() {
        // `f64::from_str` accepts all of these spellings.
        for spec in ["nan,0.5", "0.5,NaN", "inf,0.5", "0.5,-inf", "infinity"] {
            let err = parse_grid(spec).unwrap_err();
            assert!(err.contains("finite"), "`{spec}`: {err}");
        }
        for spec in ["nan:0.9:5", "0.5:inf:5"] {
            let err = parse_grid(spec).unwrap_err();
            assert!(err.contains("finite"), "`{spec}`: {err}");
        }
    }

    #[test]
    fn parse_grid_rejects_degenerate_grids() {
        // Regression: `0.5:0.9:1` used to silently return [0.5].
        let err = parse_grid("0.5:0.9:1").unwrap_err();
        assert!(err.contains("one step"), "{err}");
        // Regression: reversed bounds were accepted without complaint.
        let err = parse_grid("0.9:0.5:3").unwrap_err();
        assert!(err.contains("reversed"), "{err}");
        assert!(parse_grid("0.5:0.9:0").is_err(), "zero steps");
        assert!(parse_grid("0.5:0.9").is_err(), "two fields");
        assert!(parse_grid("0.5:0.9:3:4").is_err(), "four fields");
        assert!(parse_grid("0.5:x:3").is_err(), "non-numeric bound");
    }

    #[test]
    fn threads_zero_is_a_cli_error_not_a_rayon_default() {
        // Regression: `--threads 0` used to reach the rayon shim, whose
        // `num_threads(0)` silently means "all cores".
        let mut sweep = SweepArgs::default();
        let args: Vec<String> = ["--threads", "0"].iter().map(|s| s.to_string()).collect();
        let mut it = args.iter();
        let err = sweep.try_parse(&args[0], {
            it.next();
            &mut it
        });
        let err = err.unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        // Positive counts still parse.
        let args: Vec<String> = ["--threads", "3"].iter().map(|s| s.to_string()).collect();
        let mut it = args.iter();
        it.next();
        assert!(sweep.try_parse(&args[0], &mut it).unwrap());
        assert_eq!(sweep.threads, Some(3));
    }

    #[test]
    fn serve_worker_counts_reject_zero() {
        for (args, what) in [
            (vec!["--workers", "0"], "--workers"),
            (vec!["--queue-depth", "0"], "--queue-depth"),
        ] {
            let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            let err = run_serve_command(&args).unwrap_err();
            assert!(err.contains("at least 1"), "{what}: {err}");
        }
    }

    #[test]
    fn submit_rejects_daemon_side_execution_flags() {
        for extra in [
            vec!["--threads", "2"],
            vec!["--cache-dir", "c"],
            vec!["--resume"],
            vec!["--no-cache"],
        ] {
            let args: Vec<String> = extra.iter().map(|s| s.to_string()).collect();
            let err = run_submit_command(&args).unwrap_err();
            assert!(err.contains("daemon-side"), "{extra:?}: {err}");
        }
        let args: Vec<String> = ["--csv", "x.csv"].iter().map(|s| s.to_string()).collect();
        let err = run_submit_command(&args).unwrap_err();
        assert!(err.contains("JSON report only"), "{err}");
    }

    #[test]
    fn energy_rejects_report_plus_sweep_shaping() {
        let args: Vec<String> = ["--report", "r.json", "--chips", "8"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = run_energy_command(&args).unwrap_err();
        assert!(err.contains("--report"), "{err}");
    }

    #[test]
    fn energy_rejects_the_ber_axis() {
        let args: Vec<String> = ["--bers", "0.01,0.05"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = run_energy_command(&args).unwrap_err();
        assert!(err.contains("voltage-axis"), "{err}");
    }

    #[test]
    fn energy_rejects_the_clock_axis() {
        let args: Vec<String> = ["--clock-stress", "0.4,0.8"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = run_energy_command(&args).unwrap_err();
        assert!(err.contains("voltage-axis"), "{err}");
    }

    #[test]
    fn stress_axes_are_mutually_exclusive() {
        for pair in [
            ["--voltages", "0.9", "--bers", "0.01"],
            ["--voltages", "0.9", "--clock-stress", "0.5"],
            ["--bers", "0.01", "--clock-stress", "0.5"],
        ] {
            let args: Vec<String> = pair.iter().map(|s| s.to_string()).collect();
            let mut sweep = SweepArgs::default();
            let mut it = args.iter();
            while let Some(arg) = it.next() {
                assert!(sweep.try_parse(arg, &mut it).unwrap());
            }
            let err = sweep.build_plan().unwrap_err();
            assert!(err.contains("mutually exclusive"), "{pair:?}: {err}");
        }
    }

    #[test]
    fn compare_models_owns_its_axes_and_modes() {
        for flag in [
            ["--voltages", "0.9"],
            ["--bers", "0.01"],
            ["--clock-stress", "0.5"],
            ["--modes", "naive"],
        ] {
            let args: Vec<String> = flag.iter().map(|s| s.to_string()).collect();
            let err = run_compare_command(&args).unwrap_err();
            assert!(
                err.contains("compare-models fixes its own axes"),
                "{flag:?}: {err}"
            );
        }
    }

    #[test]
    fn output_knobs_do_not_count_as_sweep_shaping() {
        let mut sweep = SweepArgs::default();
        let args: Vec<String> = ["--out", "x.json", "--csv", "x.csv", "--quiet"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            assert!(sweep.try_parse(arg, &mut it).unwrap());
        }
        assert!(!sweep.sweep_shaped);
    }

    #[test]
    fn no_selection_reason_names_the_real_constraint() {
        let point = |v_sram: f64| matic_harness::TradeoffPoint {
            v_sram,
            mean_error: 1.0,
            mean_energy_pj: 1.0,
            mean_power_watts: 1.0,
            feasible: false,
            on_frontier: false,
        };
        // Every swept point below HighPerf's 0.65 V periphery floor: the
        // budget is irrelevant, and saying "over budget" would send the
        // user to the wrong knob.
        let low = [point(0.55), point(0.50)];
        assert_eq!(no_selection_reason("HighPerf", &low), "below floor");
        assert_eq!(no_selection_reason("EnOpt_split", &low), "over budget");
        let mixed = [point(0.65), point(0.50)];
        assert_eq!(no_selection_reason("HighPerf", &mixed), "over budget");
        // A feasible above-floor point that still produced no selection
        // can only have been dropped by the clock filter (EnOpt_joint
        // with the shared rail below the delay threshold).
        let feasible_low = [matic_harness::TradeoffPoint {
            feasible: true,
            ..point(0.40)
        }];
        assert_eq!(
            no_selection_reason("EnOpt_joint", &feasible_low),
            "unclockable"
        );
    }

    #[test]
    fn shard_sweep_requires_a_daemon_mode() {
        let err = run_shard_sweep_command(&[]).unwrap_err();
        assert!(err.contains("--daemons LIST or --spawn N"), "{err}");
        let args: Vec<String> = ["--daemons", "a.sock", "--spawn", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = run_shard_sweep_command(&args).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn shard_sweep_rejects_misplaced_execution_knobs() {
        // --threads belongs to the daemons in either mode.
        let args: Vec<String> = ["--spawn", "2", "--threads", "4"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = run_shard_sweep_command(&args).unwrap_err();
        assert!(err.contains("daemon-side"), "{err}");
        // Cache and worker knobs only make sense for daemons this
        // command spawns itself.
        for extra in [
            vec!["--cache-dir", "c"],
            vec!["--resume"],
            vec!["--no-cache"],
            vec!["--workers", "2"],
        ] {
            let mut args = vec!["--daemons".to_string(), "a.sock,b.sock".to_string()];
            args.extend(extra.iter().map(|s| s.to_string()));
            let err = run_shard_sweep_command(&args).unwrap_err();
            assert!(err.contains("spawned daemons"), "{extra:?}: {err}");
        }
    }

    #[test]
    fn shard_sweep_counts_reject_zero() {
        for (args, what) in [
            (vec!["--spawn", "0"], "--spawn"),
            (vec!["--daemons", "a.sock", "--shards", "0"], "--shards"),
        ] {
            let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            let err = run_shard_sweep_command(&args).unwrap_err();
            assert!(err.contains("at least 1"), "{what}: {err}");
        }
    }

    #[test]
    fn client_addresses_parse_to_endpoints() {
        let args: Vec<String> = ["--socket", "http://10.0.0.7:4500"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let endpoint = parse_socket_only(&args, "status").unwrap();
        assert_eq!(
            endpoint,
            matic_serve::Endpoint::Http("10.0.0.7:4500".to_string())
        );
        let endpoint = parse_socket_only(&[], "status").unwrap();
        assert_eq!(endpoint, matic_serve::Endpoint::unix(DEFAULT_SOCKET));
    }

    #[test]
    fn energy_rejects_report_plus_execution_flags() {
        // --threads/--cache-dir/--resume/--no-cache do nothing under
        // --report; silently ignoring them would let a user believe the
        // cache was consulted.
        for extra in [
            vec!["--threads", "2"],
            vec!["--cache-dir", "c"],
            vec!["--resume"],
            vec!["--no-cache"],
        ] {
            let mut args = vec!["--report".to_string(), "r.json".to_string()];
            args.extend(extra.iter().map(|s| s.to_string()));
            let err = run_energy_command(&args).unwrap_err();
            assert!(err.contains("--report"), "{extra:?}: {err}");
        }
    }

    #[test]
    fn unknown_benchmark_error_lists_valid_names() {
        let sweep = SweepArgs {
            benchmarks: "mnits".to_string(), // typo'd mnist
            ..SweepArgs::default()
        };
        let err = sweep.build_plan().unwrap_err();
        assert!(err.contains("unknown benchmark `mnits`"), "{err}");
        // The error must name every valid choice, so a typo is
        // self-correcting from the message alone.
        for name in ["mnist", "facedet", "inversek2j", "bscholes", "all"] {
            assert!(err.contains(name), "missing `{name}` in: {err}");
        }
    }

    #[test]
    fn topology_flag_parses_and_shapes_the_plan() {
        let mut sweep = SweepArgs::default();
        let args: Vec<String> = ["--topology", "10x10x1;conv3x4;pool2;dense10"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut it = args.iter();
        it.next();
        assert!(sweep.try_parse(&args[0], &mut it).unwrap());
        assert!(sweep.sweep_shaped, "--topology shapes the sweep");
        // The override only validates against benchmarks with matching
        // I/O widths — mnist is the 100-in/10-out one.
        sweep.benchmarks = "mnist".to_string();
        let plan = sweep.build_plan().unwrap();
        assert_eq!(plan.scenarios.len(), 1);
        assert_eq!(plan.scenarios[0].name(), "mnist@conv3x4-pool2-dense10");

        // A malformed chain fails at the flag, mentioning the flag.
        let mut bad = SweepArgs::default();
        let args: Vec<String> = ["--topology", "10x10x1;convXx4"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut it = args.iter();
        it.next();
        let err = bad.try_parse(&args[0], &mut it).unwrap_err();
        assert!(err.contains("--topology"), "{err}");

        // A well-formed chain whose I/O widths don't match the dataset
        // fails at plan build with the scenario named.
        let mismatched = SweepArgs {
            benchmarks: "bscholes".to_string(), // 6-in/1-out
            topology: Some("10x10x1;conv3x4;pool2;dense10".to_string()),
            ..SweepArgs::default()
        };
        let err = mismatched.build_plan().unwrap_err();
        assert!(err.contains("bscholes"), "{err}");
    }
}
