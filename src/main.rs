//! `matic` — the reproduction's command-line interface.
//!
//! `matic sweep` runs a parallel chip-population sweep through
//! [`matic_harness`] and writes a deterministic JSON report (plus an
//! optional per-cell CSV). `matic cache` inspects or clears the
//! persistent sweep cache that makes interrupted sweeps resumable.
//! `matic list` shows the available benchmarks and training modes.

use matic_harness::{ReusePolicy, SweepCache, SweepPlan, SweepReport, TrainingMode};
use std::path::Path;
use std::process::ExitCode;

/// Cache directory used when `--resume` is given without `--cache-dir`.
const DEFAULT_CACHE_DIR: &str = ".matic-cache";

const USAGE: &str = "\
matic — MATIC (DATE 2018) reproduction toolkit

USAGE:
    matic sweep [OPTIONS]    run a chip-population sweep
    matic cache stats        show persistent sweep-cache contents
    matic cache clear        delete every cached cell result
    matic list               list built-in benchmarks and training modes
    matic help               show this message

SWEEP OPTIONS:
    --chips N           chip instances to synthesize        [default: 4]
    --voltages SPEC     SRAM voltages: lo:hi:steps grid or comma list
                        (e.g. 0.46:0.90:5 or 0.53,0.50,0.46) [default: 0.46:0.90:5]
    --bers SPEC         sweep synthetic bit-error rates instead of voltages
                        (the Fig. 5 axis; evaluated on the masked float view)
    --benchmarks LIST   all | comma list of mnist,facedet,inversek2j,bscholes
                                                            [default: all]
    --modes LIST        comma list of naive,mat,mat-canary  [default: naive,mat]
    --scale X           dataset scale factor                [default: 0.5]
    --epochs X          epoch-budget multiplier             [default: 0.5]
    --seed N            root seed                           [default: 42]
    --threads N         worker threads                      [default: all cores]
    --no-reuse          strict one-model-per-point (disable superset reuse)
    --cache-dir PATH    persist per-cell results under PATH and replay any
                        cell whose content key already matches (resume)
    --resume            shorthand for --cache-dir .matic-cache
    --no-cache          disable the cache even if --cache-dir/--resume given
    --out PATH          JSON report path                    [default: matic-sweep.json]
    --csv PATH          also write the per-cell table as CSV
    --quiet             suppress the summary table

CACHE OPTIONS (matic cache stats|clear):
    --cache-dir PATH    cache location                      [default: .matic-cache]

The JSON report is byte-identical for every --threads value and for every
cache hit/miss mix, and contains no timestamps or host details: identical
plans give identical bytes. Cells are checkpointed atomically as they
complete, so a killed sweep re-run with --resume picks up where it died.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("sweep") => match run_sweep_command(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        },
        Some("cache") => match run_cache_command(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        },
        Some("list") => {
            list();
            ExitCode::SUCCESS
        }
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown command `{other}`\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn list() {
    println!("benchmarks (Table I):");
    for s in matic_harness::builtin_scenarios() {
        let layers: Vec<String> = s.topology().layers.iter().map(|n| n.to_string()).collect();
        let metric = if s.is_classification() {
            "classification error %"
        } else {
            "mean squared error"
        };
        println!("  {:<12} {:<12} {metric}", s.name(), layers.join("-"));
    }
    println!("\ntraining modes:");
    println!("  naive        fault-oblivious baseline (quantization-aware)");
    println!("  mat          memory-adaptive training (paper §III-B)");
    println!("  mat-canary   MAT + in-situ canaries and runtime controller (§III-C)");
}

fn run_sweep_command(args: &[String]) -> Result<(), String> {
    let mut chips = 4usize;
    let mut voltages: Option<Vec<f64>> = None;
    let mut bers: Option<Vec<f64>> = None;
    let mut benchmarks = "all".to_string();
    let mut modes = vec![TrainingMode::Naive, TrainingMode::Mat];
    let mut scale = 0.5f64;
    let mut epochs = 0.5f64;
    let mut seed = 42u64;
    let mut threads: Option<usize> = None;
    let mut reuse = ReusePolicy::SupersetMap;
    let mut cache_dir: Option<String> = None;
    let mut resume = false;
    let mut no_cache = false;
    let mut out = "matic-sweep.json".to_string();
    let mut csv: Option<String> = None;
    let mut quiet = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--chips" => chips = parse(&value("--chips")?, "--chips")?,
            "--voltages" => voltages = Some(parse_grid(&value("--voltages")?)?),
            "--bers" => bers = Some(parse_grid(&value("--bers")?)?),
            "--benchmarks" => benchmarks = value("--benchmarks")?,
            "--modes" => {
                modes = value("--modes")?
                    .split(',')
                    .map(|m| {
                        TrainingMode::from_name(m.trim())
                            .ok_or_else(|| format!("unknown mode `{m}`"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--scale" => scale = parse(&value("--scale")?, "--scale")?,
            "--epochs" => epochs = parse(&value("--epochs")?, "--epochs")?,
            "--seed" => seed = parse(&value("--seed")?, "--seed")?,
            "--threads" => threads = Some(parse(&value("--threads")?, "--threads")?),
            "--no-reuse" => reuse = ReusePolicy::PerPoint,
            "--cache-dir" => cache_dir = Some(value("--cache-dir")?),
            "--resume" => resume = true,
            "--no-cache" => no_cache = true,
            "--out" => out = value("--out")?,
            "--csv" => csv = Some(value("--csv")?),
            "--quiet" => quiet = true,
            other => return Err(format!("unknown option `{other}` (see `matic help`)")),
        }
    }
    if voltages.is_some() && bers.is_some() {
        return Err("--voltages and --bers are mutually exclusive".into());
    }

    let mut builder = SweepPlan::builder()
        .chips(chips)
        .data_scale(scale)
        .epoch_scale(epochs)
        .seed(seed)
        .modes(&modes)
        .reuse(reuse);
    builder = match (voltages, bers) {
        (_, Some(r)) => builder.bit_error_rates(&r),
        (Some(v), None) => builder.voltages(&v),
        (None, None) => builder.voltage_grid(0.46, 0.90, 5),
    };
    for name in benchmarks.split(',') {
        builder = builder.benchmark(name.trim()).map_err(|e| e.to_string())?;
    }
    if let Some(n) = threads {
        builder = builder.threads(n);
    }
    let plan = builder.build().map_err(|e| e.to_string())?;

    // The cache is enabled by --cache-dir or --resume (which defaults the
    // location); --no-cache wins over both so scripts can force a cold
    // recompute without unwinding their flags.
    let cache_path = match (&cache_dir, resume) {
        _ if no_cache => None,
        (Some(dir), _) => Some(dir.clone()),
        (None, true) => Some(DEFAULT_CACHE_DIR.to_string()),
        (None, false) => None,
    };
    let cache = cache_path
        .as_ref()
        .map(|dir| SweepCache::open(dir).map_err(|e| format!("opening sweep cache {dir}: {e}")))
        .transpose()?;

    let workers = plan.threads.unwrap_or_else(rayon::current_num_threads);
    eprintln!(
        "sweep: {} cells ({} chips x {} {} points x {} benchmarks x {} modes) on {} threads, plan {}",
        plan.cell_count(),
        plan.chips,
        plan.axis.points().len(),
        plan.axis.kind(),
        plan.scenarios.len(),
        plan.modes.len(),
        workers,
        plan.fingerprint(),
    );
    let start = std::time::Instant::now();
    let run = matic_harness::run_sweep_with_cache(&plan, cache.as_ref());
    let elapsed = start.elapsed();
    let report = run.report;

    matic_harness::write_atomic(Path::new(&out), &report.to_json_pretty())
        .map_err(|e| format!("writing {out}: {e}"))?;
    if let Some(path) = &csv {
        matic_harness::write_atomic(Path::new(path), &report.to_csv())
            .map_err(|e| format!("writing {path}: {e}"))?;
    }
    if !quiet {
        print_summary(&report);
    }
    if let Some(dir) = &cache_path {
        eprintln!(
            "cache: {} hits, {} misses -> {dir}",
            run.cache.hits, run.cache.misses
        );
    }
    eprintln!(
        "sweep: {} cells in {:.1}s -> {out}{}",
        report.cells.len(),
        elapsed.as_secs_f64(),
        csv.map(|p| format!(" + {p}")).unwrap_or_default(),
    );
    Ok(())
}

/// `matic cache stats|clear [--cache-dir PATH]`.
fn run_cache_command(args: &[String]) -> Result<(), String> {
    let action = args
        .first()
        .map(String::as_str)
        .ok_or("cache needs an action: stats or clear")?;
    let mut dir = DEFAULT_CACHE_DIR.to_string();
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cache-dir" => {
                dir = it
                    .next()
                    .cloned()
                    .ok_or_else(|| "--cache-dir needs a value".to_string())?;
            }
            other => return Err(format!("unknown option `{other}` (see `matic help`)")),
        }
    }
    // Inspection/maintenance must not conjure a cache out of a typo'd
    // path (or mutate anything on a typo'd action): validate everything
    // before SweepCache::open, which mkdir-s. Only `sweep` creates.
    if !matches!(action, "stats" | "clear") {
        return Err(format!("unknown cache action `{action}` (stats or clear)"));
    }
    if !Path::new(&dir).join("cells").is_dir() {
        return Err(format!(
            "no sweep cache at {dir} (a sweep with --cache-dir/--resume creates one)"
        ));
    }
    let cache = SweepCache::open(&dir).map_err(|e| format!("opening sweep cache {dir}: {e}"))?;
    match action {
        "stats" => {
            let stats = cache
                .stats()
                .map_err(|e| format!("reading cache {dir}: {e}"))?;
            println!("cache {dir}: {} cells, {} bytes", stats.cells, stats.bytes);
            Ok(())
        }
        "clear" => {
            let removed = cache
                .clear()
                .map_err(|e| format!("clearing cache {dir}: {e}"))?;
            println!("cache {dir}: removed {removed} cells");
            Ok(())
        }
        _ => unreachable!("action validated above"),
    }
}

fn print_summary(report: &SweepReport) {
    println!(
        "{:>11} | {:>10} | {:>8} | {:>11} | {:>9} | {:>9} | {:>9}",
        "benchmark",
        "mode",
        report.plan.stress_kind.as_str(),
        "mean err",
        "std",
        "fail rate",
        "mean pJ"
    );
    println!("{:-<84}", "");
    for p in &report.points {
        println!(
            "{:>11} | {:>10} | {:>8.3} | {:>11.4} | {:>9.4} | {:>8.1}% | {:>9}",
            p.scenario,
            p.mode,
            p.stress,
            p.error.mean,
            p.error.std_dev,
            p.fail_rate * 100.0,
            p.mean_energy_pj
                .map(|e| format!("{e:.1}"))
                .unwrap_or_else(|| "-".into()),
        );
    }
}

fn parse<T: std::str::FromStr>(s: &str, name: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("invalid value `{s}` for {name}"))
}

/// Parses `lo:hi:steps` (inclusive linear grid) or a comma-separated list.
fn parse_grid(spec: &str) -> Result<Vec<f64>, String> {
    if spec.contains(':') {
        let parts: Vec<&str> = spec.split(':').collect();
        if parts.len() != 3 {
            return Err(format!("grid `{spec}` must be lo:hi:steps"));
        }
        let lo: f64 = parse(parts[0], "grid lo")?;
        let hi: f64 = parse(parts[1], "grid hi")?;
        let steps: usize = parse(parts[2], "grid steps")?;
        if steps == 0 {
            return Err("grid needs at least one step".into());
        }
        Ok(matic_harness::linspace(lo, hi, steps))
    } else {
        spec.split(',')
            .map(|v| parse(v.trim(), "grid value"))
            .collect()
    }
}
