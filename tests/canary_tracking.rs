//! Closed-loop behaviour of the in-situ canary system across environment
//! changes (the Fig. 12 property, asserted rather than plotted).

use matic_core::{DeploymentFlow, MatConfig};
use matic_datasets::Benchmark;
use matic_nn::SgdConfig;
use matic_snnac::{Chip, ChipConfig, DeployedNetwork};

fn deploy(seed: u64) -> (Chip, DeployedNetwork, Vec<matic_nn::Sample>) {
    let bench = Benchmark::InverseK2j;
    let split = bench.generate_scaled(9, 0.5);
    let mut chip = Chip::synthesize(ChipConfig::snnac(), seed);
    let flow = DeploymentFlow {
        mat: MatConfig {
            sgd: SgdConfig {
                epochs: 24,
                ..bench.sgd()
            },
            ..MatConfig::paper()
        },
        ..DeploymentFlow::new(0.50)
    };
    let net = chip.deploy(&flow, &bench.topology(), &split.train);
    (chip, net, split.test)
}

fn mse(chip: &mut Chip, net: &DeployedNetwork, test: &[matic_nn::Sample]) -> f64 {
    let mut acc = 0.0;
    for s in test.iter().take(50) {
        let (out, _) = chip.infer(net, &s.input);
        acc += out
            .iter()
            .zip(&s.target)
            .map(|(y, t)| (y - t) * (y - t))
            .sum::<f64>()
            / out.len() as f64;
    }
    acc / test.len().min(50) as f64
}

/// Voltage tracks temperature inversely and roughly linearly (below the
/// temperature-inversion point), and accuracy survives the whole ramp.
#[test]
fn voltage_tracks_temperature_ramp_with_stable_accuracy() {
    let (mut chip, mut net, test) = deploy(0xF12);
    let mut voltages = Vec::new();
    let temps = [
        25.0, 10.0, -5.0, -15.0, 0.0, 15.0, 30.0, 45.0, 60.0, 75.0, 90.0,
    ];
    for &t in &temps {
        chip.set_temperature(t);
        let v = chip.poll_canaries_via_uc(&mut net);
        let e = mse(&mut chip, &net, &test);
        assert!(e < 0.1, "MSE {e} at {t} °C / {v} V");
        voltages.push(v);
    }
    // Coldest point needs the highest rail; hottest the lowest.
    let v_cold = voltages[3];
    let v_hot = voltages[10];
    assert!(v_cold > v_hot, "cold {v_cold} vs hot {v_hot}");
    // The total swing should be on the order of |temp_coeff| * 105 °C
    // (±2 regulator steps of slack).
    let expected = 0.24e-3 * 105.0;
    assert!(
        ((v_cold - v_hot) - expected).abs() <= 0.010 + 1e-9,
        "swing {} vs expected {expected}",
        v_cold - v_hot
    );
}

/// Repolling at a constant operating point is a fixed point: the voltage
/// settles once and stays.
#[test]
fn controller_is_idempotent_at_fixed_conditions() {
    let (mut chip, mut net, _) = deploy(0xF13);
    let v1 = chip.poll_canaries_via_uc(&mut net);
    for _ in 0..4 {
        assert_eq!(chip.poll_canaries_via_uc(&mut net), v1);
    }
}

/// The canary margin is tight: the settled voltage sits within a few
/// regulator steps of the target the deployment was trained for, not at a
/// conservative static margin hundreds of millivolts up.
#[test]
fn canary_margin_is_tight_not_static() {
    let (mut chip, mut net, _) = deploy(0xF14);
    let settled = chip.poll_canaries_via_uc(&mut net);
    // Trained for 0.50 V; canaries were chosen as the most marginal cells
    // just below it. A conventional design would sit at 0.9 V nominal or
    // apply a fixed worst-case margin; the canary system lands within
    // ~4 steps (20 mV) of the target.
    assert!(
        (settled - 0.50).abs() <= 0.020 + 1e-9,
        "settled {settled} V not tight around the 0.50 V target"
    );
}
