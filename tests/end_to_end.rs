//! End-to-end integration: the full MATIC pipeline (profile → train →
//! deploy → infer on the NPU) for each benchmark, at reduced scale.

use matic_bench_shim::*;

/// Shared helpers (duplicated minimally from the bench crate so the
/// integration tests exercise the public APIs directly).
mod matic_bench_shim {
    pub use matic_core::{upload_weights, MatConfig, MatTrainer, TrainedModel};
    pub use matic_datasets::Benchmark;
    pub use matic_nn::Sample;
    pub use matic_snnac::microcode::Program;
    pub use matic_snnac::{Chip, ChipConfig, Snnac};
    pub use matic_sram::FaultMap;

    /// Quantization-aware fault-free baseline.
    pub fn train_baseline(
        bench: Benchmark,
        train: &[Sample],
        cfg: &MatConfig,
        chip: &Chip,
    ) -> TrainedModel {
        let a = &chip.config().array;
        let clean = FaultMap::clean(0.9, a.banks, a.bank.words, a.bank.word_bits);
        MatTrainer::new(bench.topology(), cfg.clone()).train(train, &clean)
    }

    /// Evaluates a model through the NPU at `voltage`.
    pub fn chip_error(
        chip: &mut Chip,
        model: &TrainedModel,
        bench: Benchmark,
        test: &[Sample],
        voltage: f64,
    ) -> f64 {
        chip.set_sram_voltage(0.9);
        upload_weights(model, chip.array_mut());
        chip.set_sram_voltage(voltage);
        let npu = Snnac::snnac(model.format());
        let program = Program::compile(model.master().spec(), npu.pe_count());
        let mut wrong = 0usize;
        let mut mse = 0.0;
        for s in test {
            let (out, _) = npu.execute(&program, model.layout(), chip.array_mut(), &s.input);
            if bench.is_classification() {
                let am = |v: &[f64]| {
                    (0..v.len())
                        .max_by(|&a, &b| v[a].partial_cmp(&v[b]).unwrap())
                        .unwrap()
                };
                let ok = if out.len() == 1 {
                    (out[0] >= 0.5) == (s.target[0] >= 0.5)
                } else {
                    am(&out) == am(&s.target)
                };
                if !ok {
                    wrong += 1;
                }
            } else {
                mse += out
                    .iter()
                    .zip(&s.target)
                    .map(|(y, t)| (y - t) * (y - t))
                    .sum::<f64>()
                    / out.len() as f64;
            }
        }
        if bench.is_classification() {
            100.0 * wrong as f64 / test.len() as f64
        } else {
            mse / test.len() as f64
        }
    }

    /// The full per-benchmark recipe — the annealing schedules (and the
    /// restart policy for narrow nets) are tuned as a whole, so
    /// integration tests run the production configuration unmodified.
    pub fn quick_cfg(bench: Benchmark) -> MatConfig {
        use matic_harness::{BenchmarkScenario, Scenario};
        BenchmarkScenario(bench).train_config(1.0)
    }
}

/// For every benchmark: at the 0.50 V energy-optimal point (28 % BER), the
/// memory-adaptive model must beat the naive baseline by a wide margin and
/// stay within a usable distance of nominal.
#[test]
fn adaptive_beats_naive_at_energy_optimal_voltage() {
    for (bench, scale) in [
        (Benchmark::Mnist, 0.5),
        (Benchmark::FaceDet, 0.6),
        (Benchmark::InverseK2j, 0.6),
        (Benchmark::BScholes, 0.6),
    ] {
        let split = bench.generate_scaled(11, scale);
        let cfg = quick_cfg(bench);
        let mut chip = Chip::synthesize(ChipConfig::snnac(), 77);
        let naive = train_baseline(bench, &split.train, &cfg, &chip);
        let nominal = chip_error(&mut chip, &naive, bench, &split.test, 0.9);

        let map = chip.profile(0.50);
        assert!(
            (map.ber() - 0.28).abs() < 0.02,
            "[{bench}] 0.50 V BER should be ~28 %, got {:.3}",
            map.ber()
        );
        let adaptive = MatTrainer::new(bench.topology(), cfg.clone()).train(&split.train, &map);
        let e_naive = chip_error(&mut chip, &naive, bench, &split.test, 0.50);
        let e_adapt = chip_error(&mut chip, &adaptive, bench, &split.test, 0.50);

        // Whether this die actually hurt the naive model is a lottery over
        // which words its failing cells land in; when it did, adaptive
        // training must clearly win, and it must never be worse.
        let naive_degraded = if bench.is_classification() {
            e_naive > nominal + 10.0
        } else {
            e_naive > nominal + 0.05
        };
        if naive_degraded {
            assert!(
                e_adapt < e_naive * 0.75,
                "[{bench}] adaptive {e_adapt} must clearly beat degraded naive {e_naive}"
            );
        } else {
            assert!(
                e_adapt <= e_naive * 1.05 + 1e-9,
                "[{bench}] adaptive {e_adapt} must not be worse than naive {e_naive}"
            );
        }
        if bench.is_classification() {
            assert!(
                e_adapt < nominal + 25.0,
                "[{bench}] adaptive {e_adapt}% too far from nominal {nominal}%"
            );
        } else {
            assert!(
                e_adapt < nominal + 0.1,
                "[{bench}] adaptive {e_adapt} too far from nominal {nominal}"
            );
        }
    }
}

/// The deployment flow on a chip yields a usable network at the canary
/// controller's settled voltage, and the settled voltage actually
/// overscales (below the 0.53 V first-failure point).
#[test]
fn deployment_flow_overscales_every_benchmark() {
    use matic_core::DeploymentFlow;
    for bench in [Benchmark::InverseK2j, Benchmark::BScholes] {
        let split = bench.generate_scaled(5, 0.6);
        let mut chip = Chip::synthesize(ChipConfig::snnac(), 123);
        let flow = DeploymentFlow {
            mat: quick_cfg(bench),
            ..DeploymentFlow::new(0.50)
        };
        let mut net = chip.deploy(&flow, &bench.topology(), &split.train);
        let settled = chip.poll_canaries_via_uc(&mut net);
        assert!(
            settled < 0.53,
            "[{bench}] canary controller failed to overscale: {settled} V"
        );
        let mut mse = 0.0;
        for s in split.test.iter().take(60) {
            let (out, _) = chip.infer(&net, &s.input);
            mse += out
                .iter()
                .zip(&s.target)
                .map(|(y, t)| (y - t) * (y - t))
                .sum::<f64>()
                / out.len() as f64;
        }
        mse /= split.test.len().min(60) as f64;
        assert!(mse < 0.08, "[{bench}] deployed MSE {mse} at {settled} V");
    }
}

/// Full pipeline determinism: identical seeds produce bit-identical
/// results through data generation, chip synthesis, profiling, training
/// and NPU inference.
#[test]
fn pipeline_is_deterministic() {
    let bench = Benchmark::InverseK2j;
    let run = || {
        let split = bench.generate_scaled(3, 0.2);
        let cfg = quick_cfg(bench);
        let mut chip = Chip::synthesize(ChipConfig::snnac(), 9);
        let map = chip.profile(0.50);
        let model = MatTrainer::new(bench.topology(), cfg).train(&split.train, &map);
        chip_error(&mut chip, &model, bench, &split.test, 0.50)
    };
    assert_eq!(run(), run());
}
