//! Golden-report anchor: the four Table I benchmarks, swept exactly as
//! the checked-in golden file was generated, must keep producing
//! byte-identical output.
//!
//! The golden file was written by the batch CLI:
//!
//! ```text
//! matic sweep --chips 2 --voltages 0.50,0.90 --benchmarks all \
//!     --modes naive,mat --scale 0.2 --epochs 0.3 --seed 42 \
//!     --quiet --out tests/golden/sweep_all_v3.json
//! ```
//!
//! This pins two contracts at once: the deterministic pipeline (same
//! plan → same bytes, whatever the host, thread count or kernel tier),
//! and the report's serialized layout — all-MLP plans must stay on the
//! v3 schema with the exact v3 field set, so downstream consumers of
//! existing reports never see a byte change they didn't opt into by
//! sweeping an extended topology.

use matic_harness::{run_sweep, SweepPlan, TrainingMode};

#[test]
fn all_benchmark_sweep_is_byte_identical_to_golden() {
    let plan = SweepPlan::builder()
        .chips(2)
        .voltages(&[0.50, 0.90])
        .all_benchmarks()
        .modes(&[TrainingMode::Naive, TrainingMode::Mat])
        .data_scale(0.2)
        .epoch_scale(0.3)
        .seed(42)
        .build()
        .expect("plan is valid");
    let got = run_sweep(&plan).to_json_pretty();
    let golden = include_str!("golden/sweep_all_v3.json");
    assert!(
        golden.contains("\"matic.sweep-report/v3\""),
        "golden anchor must be a v3 (all-MLP) report"
    );
    // On mismatch, dump the produced report next to the golden so CI
    // artifacts make the diff inspectable; the assert message stays
    // short because the reports are ~30 kB each.
    if got != golden {
        let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("target/golden_report_actual.json");
        let _ = std::fs::create_dir_all(out.parent().unwrap());
        let _ = std::fs::write(&out, &got);
        panic!(
            "sweep report diverged from tests/golden/sweep_all_v3.json \
             (got {} bytes vs {} golden; actual written to {})",
            got.len(),
            golden.len(),
            out.display()
        );
    }
}
