//! Cross-layer consistency: the NPU datapath, the fault-map "deploy view"
//! and the physical read-back must all agree about what the hardware
//! computes.

use matic_core::{DeploymentFlow, MatConfig, MatTrainer, ParamRef};
use matic_datasets::Benchmark;
use matic_nn::SgdConfig;
use matic_snnac::{Chip, ChipConfig};
use matic_sram::FaultMap;

fn quick_cfg(bench: Benchmark) -> MatConfig {
    MatConfig {
        sgd: SgdConfig {
            epochs: 10,
            ..bench.sgd()
        },
        ..MatConfig::paper()
    }
}

/// At the profiled voltage, the physical read-back equals the fault-map
/// view parameter-for-parameter (the fault map *is* the hardware's truth).
#[test]
fn read_back_equals_fault_map_view_at_target() {
    let bench = Benchmark::InverseK2j;
    let split = bench.generate_scaled(1, 0.2);
    let mut chip = Chip::synthesize(ChipConfig::snnac(), 31);
    let flow = DeploymentFlow {
        mat: quick_cfg(bench),
        ..DeploymentFlow::new(0.50)
    };
    let deployed = chip.deploy(&flow, &bench.topology(), &split.train);
    chip.set_sram_voltage(0.50);
    let read = deployed.deployment().read_back(chip.array_mut());
    let view = deployed
        .deployment()
        .model()
        .deploy(deployed.deployment().fault_map());
    for l in 0..read.spec().depth() {
        for (a, b) in read.weights()[l]
            .as_slice()
            .iter()
            .zip(view.weights()[l].as_slice())
        {
            assert!((a - b).abs() < 1e-12, "weight mismatch: {a} vs {b}");
        }
        for (a, b) in read.biases()[l].iter().zip(&view.biases()[l]) {
            assert!((a - b).abs() < 1e-12, "bias mismatch: {a} vs {b}");
        }
    }
}

/// NPU fixed-point inference tracks the float view of the same weights
/// within the datapath's quantization budget.
#[test]
fn npu_tracks_float_view_within_quantization_budget() {
    let bench = Benchmark::BScholes;
    let split = bench.generate_scaled(2, 0.2);
    let mut chip = Chip::synthesize(ChipConfig::snnac(), 17);
    let flow = DeploymentFlow {
        mat: quick_cfg(bench),
        ..DeploymentFlow::new(0.52)
    };
    let net = chip.deploy(&flow, &bench.topology(), &split.train);
    chip.set_sram_voltage(0.52);
    let float_view = net.deployment().read_back(chip.array_mut());
    let mut worst = 0.0f64;
    for s in split.test.iter().take(50) {
        let (out, _) = chip.infer(&net, &s.input);
        let reference = float_view.forward(&s.input);
        for (a, b) in out.iter().zip(&reference) {
            worst = worst.max((a - b).abs());
        }
    }
    // Activation LSB is 2^-14; AFU PWL error < 0.005; accumulated error
    // across two layers stays comfortably below 0.02.
    assert!(worst < 0.02, "NPU vs float view divergence {worst}");
}

/// Deployed weight words satisfy their own fault masks: what MAT assumed
/// stuck is exactly what the chip reads back stuck.
#[test]
fn deployed_words_satisfy_masks() {
    let bench = Benchmark::Mnist;
    let split = bench.generate_scaled(3, 0.1);
    let mut chip = Chip::synthesize(ChipConfig::snnac(), 41);
    let map = chip.profile(0.50);
    let model = MatTrainer::new(bench.topology(), quick_cfg(bench)).train(&split.train, &map);
    matic_core::upload_weights(&model, chip.array_mut());
    chip.set_sram_voltage(0.50);
    let fmt = model.format();
    for (param, loc) in model.layout().entries() {
        let word = chip.array_mut().read(loc.bank, loc.word);
        let masked = map.apply(loc.bank, loc.word, word);
        assert_eq!(word, masked, "word at {loc:?} violates its mask");
        // And it decodes to the deploy view's value.
        let expect = match param {
            ParamRef::Weight { layer, row, col } => {
                model.deploy(&map).weights()[layer].get(row, col)
            }
            ParamRef::Bias { layer, row } => model.deploy(&map).biases()[layer][row],
        };
        let got = matic_fixed::dequantize(fmt.decode(word), fmt);
        assert!((got - expect).abs() < 1e-12);
    }
}

/// The µC-executed Algorithm 1 and the pure-Rust controller agree on two
/// identical dice across a temperature excursion.
#[test]
fn uc_and_rust_controllers_track_identically_over_temperature() {
    let bench = Benchmark::InverseK2j;
    let split = bench.generate_scaled(4, 0.15);
    let make = || {
        let mut chip = Chip::synthesize(ChipConfig::snnac(), 55);
        let flow = DeploymentFlow {
            mat: quick_cfg(bench),
            ..DeploymentFlow::new(0.50)
        };
        let net = chip.deploy(&flow, &bench.topology(), &split.train);
        (chip, net)
    };
    let (mut chip_a, mut net_a) = make();
    let (mut chip_b, mut net_b) = make();
    for temp in [25.0, -5.0, 40.0, 90.0, 10.0] {
        chip_a.set_temperature(temp);
        chip_b.set_temperature(temp);
        let v_rust = chip_a.poll_canaries(&mut net_a);
        let v_uc = chip_b.poll_canaries_via_uc(&mut net_b);
        assert!(
            (v_rust - v_uc).abs() < 1e-9,
            "at {temp} C: rust {v_rust} vs uC {v_uc}"
        );
    }
}

/// A fault map profiled on one chip does not transfer to another die:
/// MATIC models are chip-specific (the paper's flow profiles each chip).
#[test]
fn fault_maps_are_die_specific() {
    let mut chip_a = Chip::synthesize(ChipConfig::snnac(), 100);
    let mut chip_b = Chip::synthesize(ChipConfig::snnac(), 200);
    let map_a = chip_a.profile(0.50);
    let map_b = chip_b.profile(0.50);
    assert_ne!(map_a, map_b);
    // Similar statistics, different pattern.
    assert!((map_a.ber() - map_b.ber()).abs() < 0.02);
    let clean = FaultMap::clean(0.5, 8, 576, 16);
    assert!(clean.is_subset_of(&map_a));
    assert!(!map_a.is_subset_of(&map_b));
}
