//! Offline vendor shim for [`criterion`](https://crates.io/crates/criterion).
//!
//! A minimal wall-clock timing harness exposing the API surface the
//! `kernels` bench uses: [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_with_setup`], [`criterion_group!`] /
//! [`criterion_main!`] and a [`black_box`] re-export. Each benchmark is
//! auto-calibrated to a ~100 ms measurement window per sample and reports
//! the median, min and max time per iteration. No statistical analysis,
//! HTML reports or baseline comparisons — just honest numbers for "did
//! this hot path regress" eyeballing in an offline environment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Per-iteration statistics of one completed benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchRecord {
    /// Benchmark name as passed to [`Criterion::bench_function`].
    pub name: String,
    /// Median time per iteration, nanoseconds.
    pub median_ns: u128,
    /// Fastest sample, nanoseconds.
    pub min_ns: u128,
    /// Slowest sample, nanoseconds.
    pub max_ns: u128,
    /// Number of timed samples.
    pub samples: usize,
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    results: Vec<BenchRecord>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(3);
        self
    }

    /// Times `f` and prints per-iteration statistics.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        let mut samples = Vec::with_capacity(sample_size);
        // One untimed warm-up sample, then the real ones.
        for i in 0..=sample_size {
            let mut b = Bencher {
                per_iter: Duration::ZERO,
            };
            f(&mut b);
            if i > 0 {
                samples.push(b.per_iter);
            }
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        println!(
            "{name:<40} median {:>12} (min {}, max {}, {} samples)",
            fmt_duration(median),
            fmt_duration(samples[0]),
            fmt_duration(*samples.last().unwrap()),
            samples.len(),
        );
        self.results.push(BenchRecord {
            name: name.to_string(),
            median_ns: median.as_nanos(),
            min_ns: samples[0].as_nanos(),
            max_ns: samples.last().unwrap().as_nanos(),
            samples: samples.len(),
        });
        self
    }

    /// All benchmark results recorded so far, in execution order. Bench
    /// harnesses use this to emit machine-readable baselines (e.g.
    /// `BENCH_kernel.json`) alongside the human-readable console lines.
    pub fn results(&self) -> &[BenchRecord] {
        &self.results
    }
}

/// Passed to the closure given to [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    per_iter: Duration,
}

/// Target wall-clock spent measuring one sample.
const SAMPLE_BUDGET: Duration = Duration::from_millis(100);

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate the iteration count to the sample budget.
        let probe = Instant::now();
        black_box(routine());
        let once = probe.elapsed().max(Duration::from_nanos(1));
        let iters = (SAMPLE_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 10_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.per_iter = start.elapsed() / iters as u32;
    }

    /// Times `routine` over inputs built by an untimed `setup`.
    pub fn iter_with_setup<S, I, O, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let probe_input = setup();
        let probe = Instant::now();
        black_box(routine(probe_input));
        let once = probe.elapsed().max(Duration::from_nanos(1));
        let iters = (SAMPLE_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.per_iter = total / iters as u32;
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group; mirrors `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point; mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
