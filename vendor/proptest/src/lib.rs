//! Offline vendor shim for [`proptest`](https://crates.io/crates/proptest).
//!
//! Supports the API subset this workspace's `proptests.rs` modules use:
//! the [`proptest!`] macro (`#[test] fn name(x in strategy, ..) { .. }`
//! items, with an optional `#![proptest_config(..)]` header),
//! [`prop_assert!`] / [`prop_assert_eq!`], the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map`, [`Just`], numeric-range strategies,
//! strategy tuples, and [`collection::vec`].
//!
//! Differences from upstream: case generation is **deterministic** (seeded
//! from the test's module path and name, so failures always reproduce) and
//! there is **no shrinking** — a failing case panics with the standard
//! assertion message. Both are acceptable trade-offs for an offline CI
//! gate; the upstream crate can be dropped back in without source changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! Glob-import surface, mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestRng,
    };
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the offline CI gate fast
        // while still exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-case random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The RNG for one (property, case) pair, seeded from the property's
    /// fully qualified name so failures reproduce run-to-run.
    pub fn for_case(qualified_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in qualified_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test inputs, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        MapStrategy { base: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMapStrategy { base: self, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    base: S,
    f: F,
}

impl<S, U, F> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMapStrategy<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMapStrategy<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start() <= self.end(), "empty strategy range");
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A length specification: an exact size or a range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange(RangeInclusive<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..=n)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange(r.start..=r.end - 1)
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange(r)
        }
    }

    /// Generates `Vec`s whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.0.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Asserts a property holds; mirrors `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts two expressions are equal; mirrors `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts two expressions differ; mirrors `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests; mirrors `proptest::proptest!`.
///
/// Each `#[test] fn name(pat in strategy, ..) { body }` item expands to a
/// regular test that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut __proptest_rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $pat = $crate::Strategy::generate(&($strat), &mut __proptest_rng);
                    )*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn small() -> impl Strategy<Value = (u8, f64)> {
        (1u8..=10).prop_flat_map(|n| (Just(n), 0.0f64..n as f64))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies respect their bounds.
        #[test]
        fn ranges_in_bounds(x in -3.0f64..7.0, n in 2u8..=9, i in -5i32..5) {
            prop_assert!((-3.0..7.0).contains(&x));
            prop_assert!((2..=9).contains(&n));
            prop_assert!((-5..5).contains(&i));
        }

        /// Dependent strategies see the upstream draw.
        #[test]
        fn flat_map_dependency(pair in small()) {
            let (n, x) = pair;
            prop_assert!(x < n as f64);
        }

        /// Collection strategies honour their size range.
        #[test]
        fn vec_sizes(v in crate::collection::vec(0u32..100, 1..16)) {
            prop_assert!(!v.is_empty() && v.len() < 16);
            prop_assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let strat = 0.0f64..1.0;
        let a: Vec<f64> = (0..5)
            .map(|c| strat.generate(&mut TestRng::for_case("x::y", c)))
            .collect();
        let b: Vec<f64> = (0..5)
            .map(|c| strat.generate(&mut TestRng::for_case("x::y", c)))
            .collect();
        assert_eq!(a, b);
        assert!(a.windows(2).any(|w| w[0] != w[1]), "cases do not vary");
    }
}
