//! Offline vendor shim for the [`rand`](https://crates.io/crates/rand)
//! crate.
//!
//! The build environment for this repository has no crates.io access, so
//! this crate reimplements the small API subset the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`] and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast, high
//! quality, and fully deterministic in its seed. The bit streams do **not**
//! match the upstream `rand` crate's `StdRng` (ChaCha12); everything in
//! this workspace is calibrated against *this* generator, which is all
//! reproducibility requires.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s. Object-safe core of [`Rng`].
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (`f64` in `[0, 1)`, `bool`, or a
    /// full-range integer).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value inside `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce from the "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard the (possible only through rounding) v == end case.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream fills the state; all-zero is impossible.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random slice operations (only `shuffle` is provided).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle, deterministic in the RNG state.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&x));
            let i = rng.gen_range(-1i32..=1);
            assert!((-1..=1).contains(&i));
            let u = rng.gen_range(3usize..10);
            assert!((3..10).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }
}
