//! Offline vendor shim for [`rayon`](https://crates.io/crates/rayon).
//!
//! Provides the data-parallel iterator subset this workspace uses:
//! `par_iter()` / `into_par_iter()`, `map`, `for_each` and `collect`.
//! Execution uses `std::thread::scope` with a shared atomic work queue —
//! idle workers pull the next undone item, which gives the same dynamic
//! load balancing (work stealing from a single shared deque) that makes
//! rayon effective for heterogeneous task sizes like MAT training runs.
//!
//! Result order is always the input order regardless of worker count or
//! scheduling, so anything built on these iterators is deterministic in
//! its outputs by construction.
//!
//! Thread count resolution: `RAYON_NUM_THREADS` (if set and non-zero),
//! otherwise [`std::thread::available_parallelism`].

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    //! Glob-import surface, mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

std::thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_OVERRIDE: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// The number of worker threads parallel iterators will use: an
/// [`ThreadPool::install`] override if one is active, else
/// `RAYON_NUM_THREADS`, else the machine's available parallelism.
pub fn current_num_threads() -> usize {
    let installed = POOL_OVERRIDE.with(|c| c.get());
    if installed > 0 {
        return installed;
    }
    match std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n > 0 => n,
        _ => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Builds [`ThreadPool`]s, mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests an explicit worker count (0 = automatic).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Finalizes the pool. Never fails in this shim; the `Result` mirrors
    /// the upstream signature.
    pub fn build(self) -> Result<ThreadPool, std::convert::Infallible> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A scoped thread-count policy, mirroring `rayon::ThreadPool`. This shim
/// spawns workers per parallel call, so the pool only pins the count.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count governing every parallel
    /// iterator invoked (transitively) inside it on this thread.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let n = if self.num_threads > 0 {
            self.num_threads
        } else {
            current_num_threads()
        };
        let prev = POOL_OVERRIDE.with(|c| c.replace(n));
        let out = f();
        POOL_OVERRIDE.with(|c| c.set(prev));
        out
    }

    /// This pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            current_num_threads()
        }
    }
}

/// Runs `f` over `items` on `threads` workers pulling from a shared queue;
/// results come back in input order.
fn run_pool<T: Send, U: Send>(items: Vec<T>, f: impl Fn(T) -> U + Sync, threads: usize) -> Vec<U> {
    let n = items.len();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Items become a bank of one-shot cells; the cursor is the work queue.
    let bank: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let cursor = AtomicUsize::new(0);
    let mut results: Vec<Option<U>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    {
        let slots: Vec<Mutex<&mut Option<U>>> = results.iter_mut().map(Mutex::new).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        return;
                    }
                    let item = bank[idx]
                        .lock()
                        .expect("work item lock poisoned")
                        .take()
                        .expect("work item taken twice");
                    let out = f(item);
                    **slots[idx].lock().expect("result lock poisoned") = Some(out);
                });
            }
        });
    }
    results
        .into_iter()
        .map(|r| r.expect("worker dropped a result"))
        .collect()
}

/// A parallel iterator: a materializable sequence of `Send` items.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Materializes all items, in input order.
    fn drive(self) -> Vec<Self::Item>;

    /// Maps every item through `op` in parallel.
    fn map<U, F>(self, op: F) -> Map<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Sync,
    {
        Map { base: self, op }
    }

    /// Applies `op` to every item in parallel (for side effects).
    fn for_each<F>(self, op: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let _ = self.map(op).drive();
    }

    /// Collects the items into `C`, preserving input order.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.drive().into_iter().collect()
    }

    /// The sum of all items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.drive().into_iter().sum()
    }
}

/// Source iterator over an owned vector (items handed to workers as-is).
pub struct IterVec<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IterVec<T> {
    type Item = T;

    fn drive(self) -> Vec<T> {
        self.items
    }
}

/// A mapped parallel iterator (this is where the pool actually runs).
pub struct Map<B, F> {
    base: B,
    op: F,
}

impl<B, U, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    U: Send,
    F: Fn(B::Item) -> U + Sync,
{
    type Item = U;

    fn drive(self) -> Vec<U> {
        run_pool(self.base.drive(), self.op, current_num_threads())
    }
}

/// Conversion into a parallel iterator, mirroring
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Consumes `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IterVec<T>;

    fn into_par_iter(self) -> IterVec<T> {
        IterVec { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = IterVec<usize>;

    fn into_par_iter(self) -> IterVec<usize> {
        IterVec {
            items: self.collect(),
        }
    }
}

/// Borrowing conversion, mirroring `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// The element type (a reference).
    type Item: Send;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Iterates `&self` in parallel.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = IterVec<&'a T>;

    fn par_iter(&'a self) -> IterVec<&'a T> {
        IterVec {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = IterVec<&'a T>;

    fn par_iter(&'a self) -> IterVec<&'a T> {
        IterVec {
            items: self.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..500).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..500).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_owned() {
        let out: Vec<String> = vec!["a", "b", "c"]
            .into_par_iter()
            .map(|s| s.to_uppercase())
            .collect();
        assert_eq!(out, ["A", "B", "C"]);
    }

    #[test]
    fn uneven_work_is_balanced_and_ordered() {
        // Heterogeneous task sizes exercise the shared-queue scheduling.
        let out: Vec<usize> = (0..64usize)
            .into_par_iter()
            .map(|i| {
                let spin = if i % 7 == 0 { 20_000 } else { 10 };
                let mut acc = i;
                for _ in 0..spin {
                    acc = acc.wrapping_mul(31).wrapping_add(1);
                }
                let _ = acc;
                i
            })
            .collect();
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn sum_matches_serial() {
        let total: u64 = (0..100u64).collect::<Vec<_>>().into_par_iter().sum();
        assert_eq!(total, 4950);
    }
}
