//! Offline vendor shim for [`serde`](https://serde.rs).
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of serde that the workspace relies on: the [`Serialize`] and
//! [`Deserialize`] traits with `#[derive(Serialize, Deserialize)]` macros
//! (re-exported from the companion `serde_derive` proc-macro crate).
//!
//! Instead of upstream serde's visitor architecture, both traits go
//! through an owned [`Value`] tree — the simplest model that supports the
//! workspace's needs (JSON/CSV reports, golden-file tests, config
//! round-trips). Structs map to objects, enums use serde's externally
//! tagged representation (`"Variant"`, `{"Variant": value}`,
//! `{"Variant": [..]}` or `{"Variant": {..}}`), so the emitted JSON matches
//! what upstream serde_json would produce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A serialized value tree (the data model of this shim).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map (field order = declaration order, for stable output).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entries of a map value, or `None`.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements of a sequence value, or `None`.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string payload, or `None`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a map entry by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error with the given message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can serialize themselves into a [`Value`] tree.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `v` into `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls ----------------------------------------------------

macro_rules! impl_ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    _ => return Err(Error::custom(format!(
                        "expected unsigned integer, got {v:?}"
                    ))),
                };
                <$t>::try_from(n).map_err(Error::custom)
            }
        }
    )*};
}
impl_ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n).map_err(Error::custom)?,
                    _ => return Err(Error::custom(format!(
                        "expected integer, got {v:?}"
                    ))),
                };
                <$t>::try_from(n).map_err(Error::custom)
            }
        }
    )*};
}
impl_ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::I64(n) => Ok(n as f64),
            Value::U64(n) => Ok(n as f64),
            Value::Null => Ok(f64::NAN),
            _ => Err(Error::custom(format!("expected float, got {v:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::custom(format!("expected bool, got {v:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom(format!("expected sequence, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_seq()
            .ok_or_else(|| Error::custom(format!("expected sequence, got {v:?}")))?;
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::custom(format!("expected {N}-element array")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_seq() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::custom(format!("expected 2-tuple, got {v:?}"))),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_seq() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(Error::custom(format!("expected 3-tuple, got {v:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
