//! Offline vendor shim for `serde_derive`.
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` proc
//! macros (the build environment has no crates.io access, so `syn` and
//! `quote` are unavailable). The parser handles exactly the shapes this
//! workspace declares: non-generic structs (named, tuple, unit) and
//! non-generic enums with unit, tuple and struct variants. `#[serde(...)]`
//! field attributes are not supported and there is no need for them here.
//!
//! Generated impls target the value-tree model of the companion `serde`
//! shim: structs become maps in field-declaration order; enums use the
//! externally tagged representation, matching upstream serde's default.

#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree based; see crate docs).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize` (value-tree based; see crate docs).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .expect("serde_derive shim generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---- item model ---------------------------------------------------------

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

// ---- parsing ------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            tokens: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        self.pos += t.is_some() as usize;
        t
    }

    fn skip_attrs_and_vis(&mut self) {
        loop {
            match self.peek() {
                // `#[...]` attribute (doc comments arrive in this form too).
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.next();
                    if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                    {
                        self.next();
                    }
                }
                // `pub`, `pub(crate)`, `pub(in ...)`.
                Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                    self.next();
                    if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        self.next();
                    }
                }
                _ => return,
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!(
                "serde shim derive: expected identifier, got {other:?}"
            )),
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.skip_attrs_and_vis();
    let kind = c.expect_ident()?;
    let name = c.expect_ident()?;
    if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive: generic type `{name}` is not supported"
        ));
    }
    match kind.as_str() {
        "struct" => {
            let fields = match c.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_named_fields(g.stream())?
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_top_level_items(g.stream()))
                }
                _ => Fields::Unit,
            };
            Ok(Item {
                name,
                body: Body::Struct(fields),
            })
        }
        "enum" => {
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())?
                }
                other => {
                    return Err(format!(
                        "serde shim derive: expected enum body, got {other:?}"
                    ))
                }
            };
            Ok(Item {
                name,
                body: Body::Enum(body),
            })
        }
        other => Err(format!(
            "serde shim derive: unsupported item kind `{other}`"
        )),
    }
}

fn parse_named_fields(ts: TokenStream) -> Result<Fields, String> {
    let mut c = Cursor::new(ts);
    let mut names = Vec::new();
    loop {
        c.skip_attrs_and_vis();
        if c.peek().is_none() {
            return Ok(Fields::Named(names));
        }
        names.push(c.expect_ident()?);
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "serde shim derive: expected `:` after field name, got {other:?}"
                ))
            }
        }
        skip_type_until_comma(&mut c);
    }
}

/// Advances past a type, stopping after the next `,` that sits outside any
/// `<...>` nesting (groups are single opaque tokens, so only angle
/// brackets need depth tracking).
fn skip_type_until_comma(c: &mut Cursor) {
    let mut angle = 0i32;
    while let Some(t) = c.next() {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
    }
}

fn count_top_level_items(ts: TokenStream) -> usize {
    let mut c = Cursor::new(ts);
    let mut count = 0;
    loop {
        c.skip_attrs_and_vis();
        if c.peek().is_none() {
            return count;
        }
        count += 1;
        skip_type_until_comma(&mut c);
    }
}

fn parse_variants(ts: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(ts);
    let mut variants = Vec::new();
    loop {
        c.skip_attrs_and_vis();
        if c.peek().is_none() {
            return Ok(variants);
        }
        let name = c.expect_ident()?;
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_top_level_items(g.stream());
                c.next();
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream())?;
                c.next();
                f
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        skip_type_until_comma(&mut c);
        variants.push(Variant { name, fields });
    }
}

// ---- code generation ----------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Body::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Body::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| gen_ser_arm(name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
            fn to_value(&self) -> ::serde::Value {{ {body} }} \
        }}"
    )
}

fn gen_ser_arm(name: &str, v: &Variant) -> String {
    let vn = &v.name;
    match &v.fields {
        Fields::Unit => {
            format!("{name}::{vn} => ::serde::Value::Str(::std::string::String::from({vn:?})),")
        }
        Fields::Tuple(1) => format!(
            "{name}::{vn}(f0) => ::serde::Value::Map(::std::vec![(\
                ::std::string::String::from({vn:?}), \
                ::serde::Serialize::to_value(f0))]),"
        ),
        Fields::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let items: Vec<String> = binds
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b})"))
                .collect();
            format!(
                "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![(\
                    ::std::string::String::from({vn:?}), \
                    ::serde::Value::Seq(::std::vec![{}]))]),",
                binds.join(", "),
                items.join(", ")
            )
        }
        Fields::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "{name}::{vn} {{ {} }} => ::serde::Value::Map(::std::vec![(\
                    ::std::string::String::from({vn:?}), \
                    ::serde::Value::Map(::std::vec![{}]))]),",
                fields.join(", "),
                entries.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => gen_de_fields(name, name, fields, "v"),
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("{vn:?} => return ::std::result::Result::Ok({name}::{vn}),")
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    let build = gen_de_fields(name, &format!("{name}::{vn}"), &v.fields, "payload");
                    format!("{vn:?} => {{ let payload = payload; {build} }}")
                })
                .collect();
            format!(
                "if let ::std::option::Option::Some(s) = v.as_str() {{ \
                     match s {{ {unit} _ => return ::std::result::Result::Err(\
                         ::serde::Error::custom(::std::format!(\
                             \"unknown {name} variant `{{s}}`\"))), }} \
                 }} \
                 let entries = v.as_map().ok_or_else(|| ::serde::Error::custom(\
                     \"expected externally tagged {name}\"))?; \
                 if entries.len() != 1 {{ \
                     return ::std::result::Result::Err(::serde::Error::custom(\
                         \"expected single-key map for {name}\")); \
                 }} \
                 let (tag, payload) = (&entries[0].0, &entries[0].1); \
                 match tag.as_str() {{ \
                     {tagged} \
                     other => ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"unknown {name} variant `{{other}}`\"))), \
                 }}",
                unit = unit_arms.join(" "),
                tagged = tagged_arms.join(" "),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
            fn from_value(v: &::serde::Value) \
                -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
        }}"
    )
}

/// Builds `constructor { .. }` / `constructor(..)` / `constructor` from the
/// value bound to `src`.
fn gen_de_fields(type_name: &str, constructor: &str, fields: &Fields, src: &str) -> String {
    match fields {
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value({src}.get({f:?})\
                            .ok_or_else(|| ::serde::Error::custom(\
                                \"missing field `{f}` in {type_name}\"))?)?"
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({constructor} {{ {} }})",
                inits.join(", ")
            )
        }
        Fields::Tuple(1) => format!(
            "::std::result::Result::Ok({constructor}(\
                ::serde::Deserialize::from_value({src})?))"
        ),
        Fields::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = {src}.as_seq().ok_or_else(|| ::serde::Error::custom(\
                     \"expected sequence for {type_name}\"))?; \
                 if items.len() != {n} {{ \
                     return ::std::result::Result::Err(::serde::Error::custom(\
                         \"wrong tuple arity for {type_name}\")); \
                 }} \
                 ::std::result::Result::Ok({constructor}({}))",
                inits.join(", ")
            )
        }
        Fields::Unit => format!("::std::result::Result::Ok({constructor})"),
    }
}
