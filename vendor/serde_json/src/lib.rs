//! Offline vendor shim for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! Renders and parses JSON over the value tree of the companion `serde`
//! shim. Output is fully deterministic: map entries keep declaration
//! order, floats print via Rust's shortest-roundtrip `Display`, and
//! non-finite floats render as `null` (matching upstream serde_json's
//! lossy behaviour for formats without NaN).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Serializes `value` into its [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        s: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.s.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::from_value(&v)
}

// ---- rendering ----------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => {
            if x.is_finite() {
                let start = out.len();
                let _ = write!(out, "{x}");
                // Keep floats visibly floats (serde_json prints 1.0, not 1).
                if !out[start..].contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => write_seq(out, items, indent, depth),
        Value::Map(entries) => write_map(out, entries, indent, depth),
    }
}

fn write_seq(out: &mut String, items: &[Value], indent: Option<usize>, depth: usize) {
    if items.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, depth + 1);
        write_value(out, item, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push(']');
}

fn write_map(out: &mut String, entries: &[(String, Value)], indent: Option<usize>, depth: usize) {
    if entries.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (i, (k, v)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, depth + 1);
        write_json_string(out, k);
        out.push(':');
        if indent.is_some() {
            out.push(' ');
        }
        write_value(out, v, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push('}');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing ------------------------------------------------------------

struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.s
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON"))
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        self.skip_ws();
        if self.s[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{kw}` at byte {}",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.eat_keyword("null").map(|()| Value::Null),
            b't' => self.eat_keyword("true").map(|()| Value::Bool(true)),
            b'f' => self.eat_keyword("false").map(|()| Value::Bool(false)),
            b'"' => self.parse_string().map(Value::Str),
            b'[' => {
                self.eat(b'[')?;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        c => {
                            return Err(Error::custom(format!(
                                "expected `,` or `]`, got `{}`",
                                c as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.eat(b'{')?;
                let mut entries = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    let key = self.parse_string()?;
                    self.eat(b':')?;
                    entries.push((key, self.parse_value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        c => {
                            return Err(Error::custom(format!(
                                "expected `,` or `}}`, got `{}`",
                                c as char
                            )))
                        }
                    }
                }
            }
            _ => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .s
                .get(self.pos)
                .ok_or_else(|| Error::custom("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .s
                        .get(self.pos)
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(Error::custom)?,
                                16,
                            )
                            .map_err(Error::custom)?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?,
                            );
                        }
                        c => {
                            return Err(Error::custom(format!("unknown escape `\\{}`", c as char)))
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Re-decode the multi-byte UTF-8 sequence.
                    let start = self.pos - 1;
                    let len = if b >= 0xF0 {
                        4
                    } else if b >= 0xE0 {
                        3
                    } else {
                        2
                    };
                    let chunk = self
                        .s
                        .get(start..start + len)
                        .ok_or_else(|| Error::custom("truncated UTF-8"))?;
                    let text = std::str::from_utf8(chunk).map_err(Error::custom)?;
                    out.push_str(text);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.s.len()
            && matches!(
                self.s[self.pos],
                b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'
            )
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.s[start..self.pos]).map_err(Error::custom)?;
        if text.is_empty() {
            return Err(Error::custom(format!("invalid JSON at byte {start}")));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                });
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic_value() {
        let v = Value::Map(vec![
            ("a".into(), Value::U64(3)),
            ("b".into(), Value::Seq(vec![Value::F64(0.5), Value::Null])),
            ("c".into(), Value::Str("x\"y".into())),
            ("d".into(), Value::Bool(true)),
            ("e".into(), Value::I64(-2)),
        ]);
        let compact = to_string(&v).unwrap();
        assert_eq!(
            compact,
            r#"{"a":3,"b":[0.5,null],"c":"x\"y","d":true,"e":-2}"#
        );
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn floats_stay_floats() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&0.46f64).unwrap(), "0.46");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn parses_unicode_and_escapes() {
        let v: Value = from_str(r#""café ☕""#).unwrap();
        assert_eq!(v, Value::Str("café ☕".into()));
    }
}
